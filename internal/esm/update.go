package esm

import (
	"fmt"

	"lobstore/internal/core"
	"lobstore/internal/obs"
	"lobstore/internal/postree"
)

// Insert adds data before the byte at off. Leaf overflow is handled by the
// improved algorithm of [Care86] — redistribute with one neighbour when
// that avoids a new leaf — unless the object was configured with Basic.
func (o *Object) insertOp(off int64, data []byte) error {
	if off == o.Size() {
		return o.appendOp(data)
	}
	if err := core.CheckRange(o.Size(), off, 0); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}

	e, start, path, err := o.tree.Find(off)
	if err != nil {
		return err
	}
	offIn := off - start
	total := e.Bytes + int64(len(data))

	if total <= o.leafCap {
		if o.cfg.NoShadow {
			// Ablation: update in place — read and rewrite only the
			// shifted suffix of the leaf.
			tail := make([]byte, e.Bytes-offIn)
			if err := o.readRange(e, offIn, tail); err != nil {
				return err
			}
			moved := append(append([]byte{}, data...), tail...)
			if err := o.st.WriteRange(o.seg(e), offIn, moved); err != nil {
				return err
			}
			if err := o.tree.UpdateLeaf(path, postree.Entry{Bytes: total, Ptr: e.Ptr}); err != nil {
				return err
			}
			return o.tree.FlushOp()
		}
		// The insertion fits: shadow the leaf (copy, update, flush).
		content, err := o.readLeaf(e)
		if err != nil {
			return err
		}
		spliced := splice(content, offIn, data, 0)
		ne, err := o.allocLeaf(spliced)
		if err != nil {
			return err
		}
		if err := o.freeLeaf(e); err != nil {
			return err
		}
		if err := o.tree.UpdateLeaf(path, ne); err != nil {
			return err
		}
		return o.tree.FlushOp()
	}

	if o.cfg.Insert == Improved {
		done, err := o.insertWithNeighbour(e, path, offIn, data)
		if err != nil {
			return err
		}
		if done {
			return o.tree.FlushOp()
		}
	}

	// Basic overflow handling: distribute the leaf's bytes and the new
	// bytes evenly over as many new leaves as required.
	content, err := o.readLeaf(e)
	if err != nil {
		return err
	}
	spliced := splice(content, offIn, data, 0)
	entries, err := o.writePieces(spliced, evenLayout(int64(len(spliced)), o.leafCap))
	if err != nil {
		return err
	}
	if o.st.Obs.Enabled() && len(entries) > 1 {
		o.st.Obs.Emit(obs.Event{Kind: obs.KindLeafSplit, Aux1: int64(len(entries))})
	}
	if err := o.freeLeaf(e); err != nil {
		return err
	}
	if err := o.tree.ReplaceLeaf(path, entries); err != nil {
		return err
	}
	return o.tree.FlushOp()
}

// insertWithNeighbour attempts the improved insert: fold the overflowing
// content into this leaf plus one neighbour so no new leaf is created.
// Both leaves are shadowed since their bytes shift.
func (o *Object) insertWithNeighbour(e postree.Entry, path postree.Path, offIn int64, data []byte) (bool, error) {
	total := e.Bytes + int64(len(data))

	type side struct {
		e      postree.Entry
		path   postree.Path
		isLeft bool
	}
	var candidates []side
	if pe, pp, ok, err := o.tree.PrevLeaf(path); err != nil {
		return false, err
	} else if ok {
		candidates = append(candidates, side{pe, pp, true})
	}
	if ne, np, ok, err := o.tree.NextLeaf(path); err != nil {
		return false, err
	} else if ok {
		candidates = append(candidates, side{ne, np, false})
	}
	for _, c := range candidates {
		if c.e.Bytes+total > 2*o.leafCap {
			continue
		}
		// Redistribute [neighbour|this] (or [this|neighbour]) evenly over
		// the same two leaves.
		content, err := o.readLeaf(e)
		if err != nil {
			return false, err
		}
		spliced := splice(content, offIn, data, 0)
		nbytes, err := o.readLeaf(c.e)
		if err != nil {
			return false, err
		}
		var combined []byte
		if c.isLeft {
			combined = append(nbytes, spliced...)
		} else {
			combined = append(spliced, nbytes...)
		}
		half := int64(len(combined)+1) / 2
		first, err := o.allocLeaf(combined[:half])
		if err != nil {
			return false, err
		}
		second, err := o.allocLeaf(combined[half:])
		if err != nil {
			return false, err
		}
		if err := o.freeLeaf(e); err != nil {
			return false, err
		}
		if err := o.freeLeaf(c.e); err != nil {
			return false, err
		}
		// Neither update changes tree structure, so both paths stay valid.
		a, b := first, second
		if !c.isLeft {
			// this leaf precedes the neighbour
			if err := o.tree.UpdateLeaf(path, a); err != nil {
				return false, err
			}
			return true, o.tree.UpdateLeaf(c.path, b)
		}
		if err := o.tree.UpdateLeaf(c.path, a); err != nil {
			return false, err
		}
		return true, o.tree.UpdateLeaf(path, b)
	}
	return false, nil
}

// Delete removes the n bytes at [off, off+n) (§3.4 delete behaviour:
// whole-leaf drops, in-place truncation of the left cut edge, shadowing of
// the right cut edge, then rebalancing of underfull seam leaves).
func (o *Object) deleteOp(off, n int64) error {
	if err := core.CheckRange(o.Size(), off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	remaining := n
	for remaining > 0 {
		e, start, path, err := o.tree.Find(off)
		if err != nil {
			return err
		}
		offIn := off - start
		switch {
		case offIn == 0 && remaining >= e.Bytes:
			// Drop the whole leaf; no data I/O at all.
			if err := o.freeLeaf(e); err != nil {
				return err
			}
			if err := o.tree.ReplaceLeaf(path, nil); err != nil {
				return err
			}
			remaining -= e.Bytes

		case offIn == 0:
			// Keep only the tail: the content shifts, so shadow the leaf.
			content, err := o.readLeaf(e)
			if err != nil {
				return err
			}
			ne, err := o.allocLeaf(content[remaining:])
			if err != nil {
				return err
			}
			if err := o.freeLeaf(e); err != nil {
				return err
			}
			if err := o.tree.UpdateLeaf(path, ne); err != nil {
				return err
			}
			remaining = 0

		case offIn+remaining >= e.Bytes:
			// Keep only the head: truncation leaves existing bytes in
			// place — only the count changes, no data I/O.
			cut := e.Bytes - offIn
			if err := o.tree.UpdateLeaf(path, postree.Entry{Bytes: offIn, Ptr: e.Ptr}); err != nil {
				return err
			}
			remaining -= cut

		default:
			// Interior delete within one leaf: head and tail survive.
			content, err := o.readLeaf(e)
			if err != nil {
				return err
			}
			kept := append(content[:offIn:offIn], content[offIn+remaining:]...)
			ne, err := o.allocLeaf(kept)
			if err != nil {
				return err
			}
			if err := o.freeLeaf(e); err != nil {
				return err
			}
			if err := o.tree.UpdateLeaf(path, ne); err != nil {
				return err
			}
			remaining = 0
		}
	}
	if err := o.fixSeam(off); err != nil {
		return err
	}
	return o.tree.FlushOp()
}

// fixSeam restores the half-full leaf invariant around the deletion point.
func (o *Object) fixSeam(off int64) error {
	for i := 0; i < 64; i++ { // defensive bound; convergence takes 1-3 rounds
		if o.Size() == 0 || o.tree.LeafCount() <= 1 {
			return nil
		}
		anchor := off
		if anchor >= o.Size() {
			anchor = o.Size() - 1
		}
		e, start, path, err := o.tree.Find(anchor)
		if err != nil {
			return err
		}
		if 2*e.Bytes < o.leafCap {
			if err := o.mergeOrShare(e, path); err != nil {
				return err
			}
			continue
		}
		// Also check the leaf left of the seam.
		pe, pp, ok, err := o.tree.PrevLeaf(path)
		if err != nil {
			return err
		}
		if ok && 2*pe.Bytes < o.leafCap {
			if err := o.mergeOrShare(pe, pp); err != nil {
				return err
			}
			continue
		}
		_ = start
		return nil
	}
	return fmt.Errorf("esm: seam rebalancing did not converge")
}

// mergeOrShare fixes one underfull leaf by merging with a neighbour when
// both fit in one leaf, or by redistributing bytes evenly otherwise. All
// involved leaves are shadowed (their bytes shift).
func (o *Object) mergeOrShare(e postree.Entry, path postree.Path) error {
	nb, npth, isLeft, ok, err := o.pickNeighbour(path)
	if err != nil {
		return err
	}
	if !ok {
		return nil // single leaf: nothing to do
	}
	var leftE, rightE postree.Entry
	var leftP, rightP postree.Path
	if isLeft {
		leftE, leftP, rightE, rightP = nb, npth, e, path
	} else {
		leftE, leftP, rightE, rightP = e, path, nb, npth
	}
	lb, err := o.readLeaf(leftE)
	if err != nil {
		return err
	}
	rb, err := o.readLeaf(rightE)
	if err != nil {
		return err
	}
	combined := append(lb, rb...)

	if int64(len(combined)) <= o.leafCap {
		if o.st.Obs.Enabled() {
			o.st.Obs.Emit(obs.Event{Kind: obs.KindLeafMerge})
		}
		merged, err := o.allocLeaf(combined)
		if err != nil {
			return err
		}
		if err := o.freeLeaf(leftE); err != nil {
			return err
		}
		if err := o.freeLeaf(rightE); err != nil {
			return err
		}
		if err := o.tree.UpdateLeaf(leftP, merged); err != nil {
			return err
		}
		// Dropping the right entry is structural, but leftP was consumed
		// already and rightP remains valid until this change.
		return o.tree.ReplaceLeaf(rightP, nil)
	}

	half := int64(len(combined)+1) / 2
	nl, err := o.allocLeaf(combined[:half])
	if err != nil {
		return err
	}
	nr, err := o.allocLeaf(combined[half:])
	if err != nil {
		return err
	}
	if err := o.freeLeaf(leftE); err != nil {
		return err
	}
	if err := o.freeLeaf(rightE); err != nil {
		return err
	}
	if err := o.tree.UpdateLeaf(leftP, nl); err != nil {
		return err
	}
	return o.tree.UpdateLeaf(rightP, nr)
}

// pickNeighbour returns the neighbour with which rebalancing is cheaper:
// the one holding fewer bytes (preferring left on ties).
func (o *Object) pickNeighbour(path postree.Path) (postree.Entry, postree.Path, bool, bool, error) {
	pe, pp, pok, err := o.tree.PrevLeaf(path)
	if err != nil {
		return postree.Entry{}, nil, false, false, err
	}
	ne, np, nok, err := o.tree.NextLeaf(path)
	if err != nil {
		return postree.Entry{}, nil, false, false, err
	}
	switch {
	case pok && (!nok || pe.Bytes <= ne.Bytes):
		return pe, pp, true, true, nil
	case nok:
		return ne, np, false, true, nil
	default:
		return postree.Entry{}, nil, false, false, nil
	}
}

// Replace overwrites the bytes at [off, off+len(data)): every affected leaf
// is shadowed (copy, update, flush), per §3.3.
func (o *Object) replaceOp(off int64, data []byte) error {
	if err := core.CheckRange(o.Size(), off, int64(len(data))); err != nil {
		return err
	}
	pos := off
	rest := data
	for len(rest) > 0 {
		e, start, path, err := o.tree.Find(pos)
		if err != nil {
			return err
		}
		offIn := pos - start
		take := e.Bytes - offIn
		if take > int64(len(rest)) {
			take = int64(len(rest))
		}
		if o.cfg.NoShadow {
			// Ablation: overwrite just the affected pages in place.
			if err := o.st.WriteRange(o.seg(e), offIn, rest[:take]); err != nil {
				return err
			}
		} else {
			content, err := o.readLeaf(e)
			if err != nil {
				return err
			}
			copy(content[offIn:], rest[:take])
			ne, err := o.allocLeaf(content)
			if err != nil {
				return err
			}
			if err := o.freeLeaf(e); err != nil {
				return err
			}
			if err := o.tree.UpdateLeaf(path, ne); err != nil {
				return err
			}
		}
		rest = rest[take:]
		pos += take
	}
	return o.tree.FlushOp()
}

// splice returns content with drop bytes at cut replaced by data.
func splice(content []byte, cut int64, data []byte, drop int64) []byte {
	out := make([]byte, 0, int64(len(content))+int64(len(data))-drop)
	out = append(out, content[:cut]...)
	out = append(out, data...)
	out = append(out, content[cut+drop:]...)
	return out
}

// evenLayout cuts n bytes into the minimum number of pieces of at most cap
// bytes, sized as evenly as possible (the basic insert distribution).
func evenLayout(n, cap int64) []int64 {
	m := (n + cap - 1) / cap
	if m == 0 {
		return nil
	}
	base := n / m
	rem := n % m
	out := make([]int64, m)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// writePieces materializes consecutive pieces of data as fresh leaves.
func (o *Object) writePieces(data []byte, pieces []int64) ([]postree.Entry, error) {
	entries := make([]postree.Entry, 0, len(pieces))
	pos := int64(0)
	for _, sz := range pieces {
		e, err := o.allocLeaf(data[pos : pos+sz])
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
		pos += sz
	}
	if pos != int64(len(data)) {
		return nil, fmt.Errorf("esm: layout consumed %d of %d bytes", pos, len(data))
	}
	return entries, nil
}
