// Package store binds the simulated disk, the buddy space manager and the
// buffer pool into the low-level storage interface shared by the three
// large object managers.
//
// It owns the two database areas of §4.1 — one for the leaf segments that
// hold large object bytes and one for everything else (index pages, object
// roots) — and implements the byte-range segment I/O protocol of §3.2/§3.3:
//
//   - Only the pages that contain the requested bytes are transferred,
//     never the whole segment.
//   - Runs of at most Pool.MaxRun pages are read into contiguous buffer
//     pool frames with a single I/O call.
//   - Larger runs bypass the pool. When the requested byte range does not
//     match block boundaries the read becomes the paper's 3-step I/O: the
//     first and last blocks go through the pool and are copied from there
//     into the application buffer; the interior blocks move directly.
package store

import (
	"errors"
	"fmt"

	"lobstore/internal/buddy"
	"lobstore/internal/buffer"
	"lobstore/internal/disk"
	"lobstore/internal/obs"
	"lobstore/internal/sim"
)

// Params configures a Store.
type Params struct {
	Model sim.CostModel
	Pool  buffer.Config
	// LeafAreaPages sizes the database area holding large object bytes.
	LeafAreaPages int
	// MetaAreaPages sizes the database area holding index pages and roots.
	MetaAreaPages int
	// MaxOrder is the buddy-space order; segments of up to 1<<MaxOrder
	// pages can be allocated.
	MaxOrder uint
	// Materialize stores every byte written so reads can be verified.
	Materialize bool
	// Volume selects the byte-storage backend under the cost-accounting
	// disk. Nil means a fresh in-memory volume (the simulation default); a
	// filevol.Volume makes the database durable on real files.
	Volume disk.Volume
}

// DefaultParams returns the paper's system parameters (Table 1) with area
// sizes comfortable for the 10 MB experiments.
func DefaultParams() Params {
	return Params{
		Model:         sim.DefaultModel(),
		Pool:          buffer.DefaultConfig(),
		LeafAreaPages: 64 << 10, // 256 MB of leaf space
		MetaAreaPages: 8 << 10,  // 32 MB of metadata space
		MaxOrder:      13,       // 32 MB maximum segment
		Materialize:   true,
	}
}

// Segment is a run of physically adjacent pages handed out by the buddy
// system. Object bytes are packed densely: page i of the segment holds
// bytes [i*PageSize, (i+1)*PageSize).
type Segment struct {
	Addr  disk.Addr
	Pages int32
}

func (s Segment) String() string { return fmt.Sprintf("seg{%v x%d}", s.Addr, s.Pages) }

// Store is the storage substrate under one simulated database.
type Store struct {
	Disk  *disk.Disk
	Pool  *buffer.Pool
	Clock *sim.Clock
	Leaf  *buddy.Allocator
	Meta  *buddy.Allocator
	// Obs is the database's event tracer, shared by the disk, the pool,
	// both allocators and the managers above. Always non-nil; disabled
	// (and free) until a sink is attached.
	Obs *obs.Tracer

	leafArea disk.AreaID
	maxOrder uint
	pageSize int

	// Per-operation state. The single-threaded paths run forever on the
	// permanent base state, so their behavior is exactly as before the
	// concurrent engine existed; the engine swaps a fresh OpState in per
	// client operation so operations interleaved at durability barriers
	// keep their shadow epochs and scratch buffers apart.
	base OpState
	cur  *OpState

	// retire, when set, receives the outermost EndOp's deferred frees
	// instead of the store applying them immediately. The concurrent
	// engine installs it to route frees through epoch-based reclamation:
	// pages of a superseded object version stay allocated until the last
	// snapshot reader that may still traverse them drains.
	retire func(leaf []Segment, meta []disk.Addr) error
}

// OpState is the state private to one logical operation: the shadow-epoch
// nesting depth, the frees deferred until the epoch's commit point (§3.3:
// "leaving the old one intact until it is no longer needed for recovery"),
// and the scratch buffer. A zero OpState is ready to use.
type OpState struct {
	depth       int
	pendingLeaf []Segment
	pendingMeta []disk.Addr
	scratch     []byte
}

// Reset returns the state to its zero condition while keeping the
// backing arrays, so a pooled OpState reused across operations carries
// no epoch state over but also costs no fresh allocations. A parked
// operation's pending frees are owned by that operation; Reset must only
// run after the operation has fully ended.
func (o *OpState) Reset() {
	o.depth = 0
	o.pendingLeaf = o.pendingLeaf[:0]
	o.pendingMeta = o.pendingMeta[:0]
	// scratch is kept: it is the whole point of pooling.
}

// op returns the current operation state, lazily bound to the permanent
// base state on first use.
func (s *Store) op() *OpState {
	if s.cur == nil {
		s.cur = &s.base
	}
	return s.cur
}

// SwapOp installs st as the current operation state and returns the
// previous one. Passing nil rebinds the store to its permanent base state.
// The concurrent engine brackets every client operation with a swap pair so
// that operations parked at a durability barrier do not share epoch state
// with the operation running meanwhile; single-threaded use never calls it.
func (s *Store) SwapOp(st *OpState) *OpState {
	prev := s.op()
	if st == nil {
		st = &s.base
	}
	s.cur = st
	return prev
}

// SetRetireHook routes the deferred frees of every outermost EndOp to fn
// instead of applying them immediately. fn runs after the EndOp durability
// barrier — the §3.3 ordering is unchanged — and takes ownership of both
// slices. A nil fn restores immediate application.
func (s *Store) SetRetireHook(fn func(leaf []Segment, meta []disk.Addr) error) {
	s.retire = fn
}

// ApplyFrees returns deferred frees to the space managers. The concurrent
// engine calls it when epoch-based reclamation decides a retired batch can
// no longer be observed by any snapshot reader.
func (s *Store) ApplyFrees(leaf []Segment, meta []disk.Addr) error {
	for _, seg := range leaf {
		if err := s.Leaf.Free(seg.Addr, int(seg.Pages)); err != nil {
			return err
		}
	}
	for _, a := range meta {
		if err := s.Meta.Free(a, 1); err != nil {
			return err
		}
	}
	return nil
}

// Open creates a fresh simulated database.
func Open(p Params) (*Store, error) {
	clock := sim.NewClock()
	var opts []disk.Option
	if !p.Materialize {
		opts = append(opts, disk.WithoutMaterialization())
	}
	if p.Volume != nil {
		opts = append(opts, disk.WithVolume(p.Volume))
	}
	d, err := disk.New(p.Model, clock, opts...)
	if err != nil {
		return nil, err
	}
	// The tracer is installed on the disk before the pool and the
	// allocators are created: they capture it at construction so one
	// database yields one coherent event stream.
	tracer := obs.NewTracer()
	tracer.SetTimeFunc(func() int64 { return int64(clock.Now()) })
	d.SetTracer(tracer)
	metaArea, err := d.AddArea(p.MetaAreaPages)
	if err != nil {
		return nil, fmt.Errorf("store: meta area: %w", err)
	}
	leafArea, err := d.AddArea(p.LeafAreaPages)
	if err != nil {
		return nil, fmt.Errorf("store: leaf area: %w", err)
	}
	pool, err := buffer.New(d, p.Pool)
	if err != nil {
		return nil, err
	}
	leaf, err := buddy.New(d, leafArea, buddy.WithMaxOrder(p.MaxOrder))
	if err != nil {
		return nil, fmt.Errorf("store: leaf allocator: %w", err)
	}
	// Metadata allocations are single pages; a smaller space order keeps
	// the meta area compact.
	metaOrder := p.MaxOrder
	if metaOrder > 10 {
		metaOrder = 10
	}
	meta, err := buddy.New(d, metaArea, buddy.WithMaxOrder(metaOrder))
	if err != nil {
		return nil, fmt.Errorf("store: meta allocator: %w", err)
	}
	return &Store{
		Disk:     d,
		Pool:     pool,
		Clock:    clock,
		Leaf:     leaf,
		Meta:     meta,
		Obs:      tracer,
		leafArea: leafArea,
		maxOrder: p.MaxOrder,
		pageSize: p.Model.PageSize,
	}, nil
}

// PageSize returns the disk block size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// LeafSegment reconstructs a Segment in the leaf area from a stored page
// pointer and its page count. Index structures store only the 4-byte page
// number; the page count is derived by the manager owning the segment.
func (s *Store) LeafSegment(ptr uint32, npages int) Segment {
	return Segment{
		Addr:  disk.Addr{Area: s.leafArea, Page: disk.PageID(ptr)},
		Pages: int32(npages),
	}
}

// MaxSegmentPages returns the largest leaf segment the space manager
// supports.
func (s *Store) MaxSegmentPages() int { return s.Leaf.MaxSegmentPages() }

// Scratch returns a reusable buffer of at least n bytes. The buffer is
// invalidated by the next Scratch call; callers needing two live buffers
// must copy.
func (s *Store) Scratch(n int) []byte {
	o := s.op()
	if cap(o.scratch) < n {
		o.scratch = make([]byte, n)
	}
	return o.scratch[:n]
}

// AllocSegment obtains a leaf segment of npages adjacent pages.
func (s *Store) AllocSegment(npages int) (Segment, error) {
	addr, err := s.Leaf.Alloc(npages)
	if err != nil {
		return Segment{}, err
	}
	return Segment{Addr: addr, Pages: int32(npages)}, nil
}

// BeginOp opens a shadow epoch: frees requested until the matching EndOp
// are deferred, so the pages of the pre-operation object version cannot be
// reallocated (and overwritten) before the operation commits. Calls nest.
func (s *Store) BeginOp() { s.op().depth++ }

// EndOp closes a shadow epoch. When the outermost epoch ends — after the
// manager has written its commit point (tree root or descriptor) — the
// deferred frees are applied. A durability barrier separates the commit
// point from the frees: on a durable volume the commit write must be
// stable before any page of the old version may be reused, or a crash
// could leave the still-referenced old version partially overwritten.
func (s *Store) EndOp() error {
	o := s.op()
	if o.depth == 0 {
		return fmt.Errorf("store: EndOp without BeginOp")
	}
	o.depth--
	if o.depth > 0 {
		return nil
	}
	// With write coalescing enabled, drain the pool's unprotected dirty
	// backlog as elevator-ordered runs so the barrier syncs a few large
	// sequential writes instead of leaving them to later one-page
	// evictions. A no-op in the paper configuration.
	if err := s.Pool.FlushBarrier(); err != nil {
		return err
	}
	if err := s.Disk.Barrier(); err != nil {
		return err
	}
	leaf, meta := o.pendingLeaf, o.pendingMeta
	o.pendingLeaf, o.pendingMeta = nil, nil
	if s.retire != nil && (len(leaf) > 0 || len(meta) > 0) {
		return s.retire(leaf, meta)
	}
	return s.ApplyFrees(leaf, meta)
}

// RunOp executes one update operation inside a shadow epoch: deferred
// frees apply only after f returns, i.e. after the operation's commit
// point has been written.
func (s *Store) RunOp(f func() error) error {
	s.BeginOp()
	err := f()
	if e := s.EndOp(); err == nil {
		err = e
	}
	return err
}

// FreeSegment releases a whole leaf segment and discards any buffered
// pages. Inside a shadow epoch the space is reclaimed only at EndOp.
func (s *Store) FreeSegment(seg Segment) error {
	if err := s.Pool.DropRange(seg.Addr, int(seg.Pages)); err != nil {
		return err
	}
	if o := s.op(); o.depth > 0 {
		o.pendingLeaf = append(o.pendingLeaf, seg)
		return nil
	}
	return s.Leaf.Free(seg.Addr, int(seg.Pages))
}

// TrimSegment frees the tail of seg, keeping the first keepPages pages, and
// returns the trimmed segment. EOS uses this to shrink a segment in place.
func (s *Store) TrimSegment(seg Segment, keepPages int) (Segment, error) {
	if keepPages <= 0 || keepPages > int(seg.Pages) {
		return Segment{}, fmt.Errorf("store: trim to %d of %d pages", keepPages, seg.Pages)
	}
	if keepPages == int(seg.Pages) {
		return seg, nil
	}
	tail := seg.Addr.Add(keepPages)
	n := int(seg.Pages) - keepPages
	if err := s.Pool.DropRange(tail, n); err != nil {
		return Segment{}, err
	}
	if o := s.op(); o.depth > 0 {
		o.pendingLeaf = append(o.pendingLeaf, Segment{Addr: tail, Pages: int32(n)})
	} else if err := s.Leaf.Free(tail, n); err != nil {
		return Segment{}, err
	}
	seg.Pages = int32(keepPages)
	return seg, nil
}

// AllocMetaPage obtains one metadata page (index node, object root).
func (s *Store) AllocMetaPage() (disk.Addr, error) { return s.Meta.Alloc(1) }

// FreeMetaPage releases a metadata page and discards any buffered copy.
// Inside a shadow epoch the page is reclaimed only at EndOp.
func (s *Store) FreeMetaPage(a disk.Addr) error {
	if err := s.Pool.DropRange(a, 1); err != nil {
		return err
	}
	if o := s.op(); o.depth > 0 {
		o.pendingMeta = append(o.pendingMeta, a)
		return nil
	}
	return s.Meta.Free(a, 1)
}

// ReadRange reads len(dst) object bytes starting at byte offset off within
// seg, following the hybrid buffering policy.
func (s *Store) ReadRange(seg Segment, off int64, dst []byte) error {
	n := int64(len(dst))
	if n == 0 {
		return nil
	}
	P := int64(s.pageSize)
	if off < 0 || off+n > int64(seg.Pages)*P {
		return fmt.Errorf("store: read [%d,+%d) outside %v", off, n, seg)
	}
	first := int(off / P)
	last := int((off + n - 1) / P)
	k := last - first + 1
	base := seg.Addr.Add(first)

	if k <= s.Pool.MaxRun() {
		hs, err := s.Pool.FixRun(base, k)
		switch {
		case err == nil:
			for i, h := range hs {
				pageStart := (int64(first) + int64(i)) * P
				copyOverlap(dst, off, h.Data, pageStart, P)
			}
			buffer.UnfixAll(hs, false)
			return nil
		case errors.Is(err, buffer.ErrNoRun):
			// fall through to the unbuffered path
		default:
			return err
		}
	}

	// Unbuffered path with 3-step boundary handling.
	leftPartial := off%P != 0
	rightPartial := (off+n)%P != 0
	midFirst, midLast := first, last
	if leftPartial {
		if err := s.readPageCopy(seg.Addr.Add(first), dst, off, int64(first)*P); err != nil {
			return err
		}
		midFirst++
	}
	if rightPartial && last >= midFirst {
		if err := s.readPageCopy(seg.Addr.Add(last), dst, off, int64(last)*P); err != nil {
			return err
		}
		midLast--
	}
	if midLast >= midFirst {
		count := midLast - midFirst + 1
		pos := int64(midFirst)*P - off
		if err := s.readDirect(seg.Addr.Add(midFirst), count, dst[pos:pos+int64(count)*P]); err != nil {
			return err
		}
	}
	return nil
}

// readPageCopy fetches one page (through the pool when possible) and copies
// its overlap with the destination byte range.
func (s *Store) readPageCopy(a disk.Addr, dst []byte, dstOff, pageStart int64) error {
	h, err := s.Pool.FixPage(a)
	if err == nil {
		copyOverlap(dst, dstOff, h.Data, pageStart, int64(s.pageSize))
		h.Unfix(false)
		return nil
	}
	if !errors.Is(err, buffer.ErrNoRun) {
		return err
	}
	buf := s.Scratch(s.pageSize)
	if err := s.readDirect(a, 1, buf); err != nil {
		return err
	}
	copyOverlap(dst, dstOff, buf, pageStart, int64(s.pageSize))
	return nil
}

// readDirect reads npages adjacent pages straight into dst with one I/O,
// first flushing any dirty buffered copies so the disk image is current.
func (s *Store) readDirect(a disk.Addr, npages int, dst []byte) error {
	for i := 0; i < npages; i++ {
		if err := s.Pool.FlushPage(a.Add(i)); err != nil {
			return err
		}
	}
	return s.Disk.Read(a, npages, dst)
}

// copyOverlap copies the intersection of dst bytes [dstOff, dstOff+len(dst))
// and page bytes [pageStart, pageStart+pageLen) — both expressed in segment
// byte coordinates — from the page buffer into dst.
func copyOverlap(dst []byte, dstOff int64, page []byte, pageStart, pageLen int64) {
	lo := dstOff
	if pageStart > lo {
		lo = pageStart
	}
	hi := dstOff + int64(len(dst))
	if pageStart+pageLen < hi {
		hi = pageStart + pageLen
	}
	if hi <= lo {
		return
	}
	copy(dst[lo-dstOff:hi-dstOff], page[lo-pageStart:hi-pageStart])
}

// WritePages writes npages adjacent pages from src with one I/O call,
// discarding any stale buffered copies first. This is how segments are
// written from application space: a single sequential write of exactly the
// dirty blocks (§3.4).
func (s *Store) WritePages(a disk.Addr, npages int, src []byte) error {
	if err := s.Pool.DropRange(a, npages); err != nil {
		return err
	}
	return s.Disk.Write(a, npages, src)
}

// WriteRange writes data at byte offset off within seg. Whole pages covered
// by the range are written from src; partial boundary pages are first read
// (read-modify-write), all in minimal I/O calls. Returns the number of I/O
// calls used. Managers use this for in-place appends where the existing
// partial page must be completed.
func (s *Store) WriteRange(seg Segment, off int64, src []byte) error {
	n := int64(len(src))
	if n == 0 {
		return nil
	}
	P := int64(s.pageSize)
	if off < 0 || off+n > int64(seg.Pages)*P {
		return fmt.Errorf("store: write [%d,+%d) outside %v", off, n, seg)
	}
	first := int(off / P)
	last := int((off + n - 1) / P)
	count := last - first + 1
	buf := s.Scratch(count * s.pageSize)
	// Read-modify-write the partial boundary pages.
	if off%P != 0 {
		if err := s.readPageInto(seg.Addr.Add(first), buf[:s.pageSize]); err != nil {
			return err
		}
	}
	if (off+n)%P != 0 && last != first {
		if err := s.readPageInto(seg.Addr.Add(last), buf[(count-1)*s.pageSize:]); err != nil {
			return err
		}
	}
	pos := off - int64(first)*P
	copy(buf[pos:pos+n], src)
	return s.WritePages(seg.Addr.Add(first), count, buf)
}

// readPageInto fetches one page into dst, using a buffered copy when
// resident (free) or one disk read otherwise.
func (s *Store) readPageInto(a disk.Addr, dst []byte) error {
	h, err := s.Pool.FixPage(a)
	if err == nil {
		copy(dst, h.Data)
		h.Unfix(false)
		return nil
	}
	if !errors.Is(err, buffer.ErrNoRun) {
		return err
	}
	return s.readDirect(a, 1, dst)
}

// SyncBarrier forces every byte written so far to stable storage, subject
// to the volume's sync policy. Free (and event-silent) on the in-memory
// backend, so barrier placement never changes mem-backend cost output. On
// a file backend running the commit pipeline this call may be
// acknowledged by another committer's shared fsync (group commit) and
// first fences the async write-back queue — either way it returns only
// once everything written before it is durable, which is all the §3.3
// protocol relies on.
func (s *Store) SyncBarrier() error { return s.Disk.Barrier() }

// Flush writes back everything the store holds only in memory: dirty
// buffer pool frames and the two space-manager directories. After Flush
// (plus a SyncBarrier on durable volumes) the on-disk state is complete.
func (s *Store) Flush() error {
	if err := s.Pool.FlushAll(); err != nil {
		return err
	}
	if err := s.Meta.Flush(); err != nil {
		return err
	}
	return s.Leaf.Flush()
}

// Close flushes the store and releases the underlying volume. The store is
// unusable afterwards.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		// Still release the files; report the flush failure first.
		return errors.Join(err, s.Disk.Close())
	}
	if err := s.Disk.Barrier(); err != nil {
		return errors.Join(err, s.Disk.Close())
	}
	return s.Disk.Close()
}

// MeasureOp runs f and returns the disk activity it caused.
func (s *Store) MeasureOp(f func() error) (sim.Stats, error) {
	before := s.Disk.Stats()
	err := f()
	return s.Disk.Stats().Sub(before), err
}
