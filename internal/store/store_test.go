package store

import (
	"bytes"
	"math/rand"
	"testing"

	"lobstore/internal/sim"
)

func testParams() Params {
	p := DefaultParams()
	p.LeafAreaPages = 1 << 14
	p.MetaAreaPages = 1 << 12
	p.MaxOrder = 8
	return p
}

func newStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open(testParams())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// fillSegment writes deterministic bytes into a fresh segment and returns
// the expected contents.
func fillSegment(t *testing.T, st *Store, npages int) (Segment, []byte) {
	t.Helper()
	seg, err := st.AllocSegment(npages)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, npages*st.PageSize())
	rand.New(rand.NewSource(int64(npages))).Read(data)
	if err := st.WritePages(seg.Addr, npages, data); err != nil {
		t.Fatal(err)
	}
	return seg, data
}

func TestReadRangeSmallRunThroughPool(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 8)
	ps := st.PageSize()

	// 2-page read, misaligned, fits in the pool: one 2-page I/O.
	off := int64(ps/2 + 3)
	dst := make([]byte, ps)
	stats, err := st.MeasureOp(func() error { return st.ReadRange(seg, off, dst) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data[off:off+int64(ps)]) {
		t.Fatal("data mismatch")
	}
	if stats.ReadCalls != 1 || stats.PagesRead != 2 {
		t.Fatalf("pooled 2-page read: %+v", stats)
	}

	// Same read again: pure pool hit.
	stats, err = st.MeasureOp(func() error { return st.ReadRange(seg, off, dst) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Calls() != 0 {
		t.Fatalf("cached read cost I/O: %+v", stats)
	}
}

// TestReadRangeBypassAligned: a large aligned read moves directly between
// disk and application space in one I/O call.
func TestReadRangeBypassAligned(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 8)
	ps := st.PageSize()
	dst := make([]byte, 6*ps)
	stats, err := st.MeasureOp(func() error { return st.ReadRange(seg, 0, dst) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data[:6*ps]) {
		t.Fatal("data mismatch")
	}
	if stats.ReadCalls != 1 || stats.PagesRead != 6 {
		t.Fatalf("aligned bypass read: %+v, want 1 call, 6 pages", stats)
	}
}

// TestReadRangeThreeStep reproduces §3.2's 3-step I/O: a byte range
// mismatching block boundaries at both ends costs 3 calls — first and last
// page via the pool, the interior directly.
func TestReadRangeThreeStep(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 8)
	ps := st.PageSize()
	off := int64(100)
	n := 6*ps - 200
	dst := make([]byte, n)
	stats, err := st.MeasureOp(func() error { return st.ReadRange(seg, off, dst) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data[off:off+int64(n)]) {
		t.Fatal("data mismatch")
	}
	if stats.ReadCalls != 3 {
		t.Fatalf("3-step read made %d calls", stats.ReadCalls)
	}
	if stats.PagesRead != 6 {
		t.Fatalf("3-step read moved %d pages, want 6", stats.PagesRead)
	}
	// Expected cost: 2 single-page I/Os + 1 four-page I/O = 37+37+49 ms.
	if want := 123 * sim.Millisecond; stats.Time != want {
		t.Fatalf("3-step cost %v, want %v", stats.Time, want)
	}
	// Boundary pages were placed in the pool.
	if !st.Pool.Contains(seg.Addr) || !st.Pool.Contains(seg.Addr.Add(5)) {
		t.Fatal("boundary pages not placed in the pool")
	}
	if st.Pool.Contains(seg.Addr.Add(2)) {
		t.Fatal("interior pages of a bypass read were buffered")
	}
}

// Mismatch on one side only: 2 I/O calls.
func TestReadRangeTwoStep(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 8)
	ps := st.PageSize()
	n := 6*ps - 300
	dst := make([]byte, n)
	stats, err := st.MeasureOp(func() error { return st.ReadRange(seg, 0, dst) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data[:n]) {
		t.Fatal("data mismatch")
	}
	if stats.ReadCalls != 2 {
		t.Fatalf("one-sided mismatch made %d calls, want 2", stats.ReadCalls)
	}
}

func TestReadRangeRandomized(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 16)
	rng := rand.New(rand.NewSource(99))
	total := int64(len(data))
	for i := 0; i < 300; i++ {
		off := rng.Int63n(total)
		n := 1 + rng.Int63n(total-off)
		dst := make([]byte, n)
		if err := st.ReadRange(seg, off, dst); err != nil {
			t.Fatalf("read [%d,+%d): %v", off, n, err)
		}
		if !bytes.Equal(dst, data[off:off+n]) {
			t.Fatalf("mismatch at [%d,+%d)", off, n)
		}
	}
}

func TestReadRangeBounds(t *testing.T) {
	st := newStore(t)
	seg, _ := fillSegment(t, st, 4)
	dst := make([]byte, 10)
	if err := st.ReadRange(seg, int64(4*st.PageSize())-5, dst); err == nil {
		t.Error("read past segment end succeeded")
	}
	if err := st.ReadRange(seg, -1, dst); err == nil {
		t.Error("negative offset read succeeded")
	}
	if err := st.ReadRange(seg, 0, nil); err != nil {
		t.Errorf("empty read failed: %v", err)
	}
}

func TestWriteRangeReadModifyWrite(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 8)
	ps := st.PageSize()
	// Overwrite a misaligned range; boundary pages must keep their bytes.
	off := int64(ps + 123)
	src := bytes.Repeat([]byte{0xCD}, 3*ps)
	stats, err := st.MeasureOp(func() error { return st.WriteRange(seg, off, src) })
	if err != nil {
		t.Fatal(err)
	}
	copy(data[off:], src)
	got := make([]byte, len(data))
	if err := st.ReadRange(seg, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("write range corrupted the segment")
	}
	// 2 boundary reads + 1 contiguous write of 4 pages.
	if stats.WriteCalls != 1 || stats.PagesWritten != 4 {
		t.Fatalf("write stats: %+v", stats)
	}
}

func TestTrimSegment(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 8)
	used := st.Leaf.UsedBlocks()
	trimmed, err := st.TrimSegment(seg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.Pages != 3 || trimmed.Addr != seg.Addr {
		t.Fatalf("trimmed = %v", trimmed)
	}
	if st.Leaf.UsedBlocks() != used-5 {
		t.Fatalf("trim freed %d blocks, want 5", used-st.Leaf.UsedBlocks())
	}
	got := make([]byte, 3*st.PageSize())
	if err := st.ReadRange(trimmed, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("trim corrupted the kept prefix")
	}
	// Trimming to the current size is a no-op.
	same, err := st.TrimSegment(trimmed, 3)
	if err != nil || same != trimmed {
		t.Fatalf("no-op trim: %v, %v", same, err)
	}
	if _, err := st.TrimSegment(trimmed, 0); err == nil {
		t.Error("trim to zero succeeded")
	}
	if _, err := st.TrimSegment(trimmed, 4); err == nil {
		t.Error("trim growing the segment succeeded")
	}
}

func TestFreeSegmentDropsBufferedPages(t *testing.T) {
	st := newStore(t)
	seg, _ := fillSegment(t, st, 2)
	dst := make([]byte, 100)
	if err := st.ReadRange(seg, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !st.Pool.Contains(seg.Addr) {
		t.Fatal("expected page in pool")
	}
	if err := st.FreeSegment(seg); err != nil {
		t.Fatal(err)
	}
	if st.Pool.Contains(seg.Addr) {
		t.Fatal("freed segment page still resident")
	}
	if st.Leaf.UsedBlocks() != 0 {
		t.Fatal("blocks still allocated")
	}
}

func TestMetaPageLifecycle(t *testing.T) {
	st := newStore(t)
	a, err := st.AllocMetaPage()
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.Pool.FixNew(a)
	if err != nil {
		t.Fatal(err)
	}
	h.Data[0] = 1
	h.Unfix(true)
	if err := st.FreeMetaPage(a); err != nil {
		t.Fatal(err)
	}
	if st.Pool.Contains(a) {
		t.Fatal("freed meta page still resident")
	}
	if st.Meta.UsedBlocks() != 0 {
		t.Fatal("meta blocks leak")
	}
}

func TestScratchReuse(t *testing.T) {
	st := newStore(t)
	b1 := st.Scratch(100)
	if len(b1) != 100 {
		t.Fatalf("scratch len %d", len(b1))
	}
	b2 := st.Scratch(50)
	if len(b2) != 50 {
		t.Fatalf("scratch len %d", len(b2))
	}
	b3 := st.Scratch(1 << 20)
	if len(b3) != 1<<20 {
		t.Fatalf("scratch len %d", len(b3))
	}
}

// A direct read must observe bytes that are still sitting dirty in the
// pool (flush-before-bypass).
func TestDirectReadSeesDirtyPoolPages(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 8)
	// Dirty page 2 via the pool.
	h, err := st.Pool.FixPage(seg.Addr.Add(2))
	if err != nil {
		t.Fatal(err)
	}
	h.Data[0] = 0xEA
	h.Unfix(true)
	data[2*st.PageSize()] = 0xEA
	// A 6-page aligned read bypasses the pool but must see the new byte.
	dst := make([]byte, 6*st.PageSize())
	if err := st.ReadRange(seg, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data[:len(dst)]) {
		t.Fatal("bypass read missed dirty buffered data")
	}
}
