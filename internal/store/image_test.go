package store

import (
	"bytes"
	"testing"
)

func TestStoreImageRoundTrip(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 8)
	meta, err := st.AllocMetaPage()
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.Pool.FixNew(meta)
	if err != nil {
		t.Fatal(err)
	}
	h.Data[0] = 0x7E
	h.Unfix(true)

	var img bytes.Buffer
	if err := st.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Data pages survive.
	got := make([]byte, len(data))
	if err := st2.ReadRange(Segment{Addr: seg.Addr, Pages: seg.Pages}, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("segment data lost across store image")
	}
	// The dirty meta page was flushed by SaveImage.
	h2, err := st2.Pool.FixPage(meta)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Data[0] != 0x7E {
		t.Fatal("meta page content lost")
	}
	h2.Unfix(false)
	// Allocation state survives: the old segment is still allocated and
	// freeable, and new allocations do not collide with it.
	if st2.Leaf.UsedBlocks() != int64(seg.Pages) {
		t.Fatalf("reopened leaf allocator sees %d blocks, want %d", st2.Leaf.UsedBlocks(), seg.Pages)
	}
	seg2, err := st2.AllocSegment(4)
	if err != nil {
		t.Fatal(err)
	}
	if seg2.Addr.Page >= seg.Addr.Page && seg2.Addr.Page < seg.Addr.Page+8 {
		t.Fatalf("new segment %v collides with reopened %v", seg2, seg)
	}
	if err := st2.FreeSegment(Segment{Addr: seg.Addr, Pages: seg.Pages}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenImageRejectsGarbage(t *testing.T) {
	if _, err := OpenImage(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := OpenImage(bytes.NewReader(bytes.Repeat([]byte{0xAA}, 64))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestShadowEpochDefersFrees(t *testing.T) {
	st := newStore(t)
	seg, _ := fillSegment(t, st, 4)
	used := st.Leaf.UsedBlocks()
	st.BeginOp()
	if err := st.FreeSegment(seg); err != nil {
		t.Fatal(err)
	}
	if st.Leaf.UsedBlocks() != used {
		t.Fatal("free applied inside the shadow epoch")
	}
	// Allocation inside the epoch must not reuse the deferred pages.
	seg2, err := st.AllocSegment(4)
	if err != nil {
		t.Fatal(err)
	}
	if seg2.Addr == seg.Addr {
		t.Fatal("deferred-freed pages reused before commit")
	}
	if err := st.EndOp(); err != nil {
		t.Fatal(err)
	}
	if st.Leaf.UsedBlocks() != used {
		// seg (4 pages) freed, seg2 (4 pages) allocated: net zero.
		t.Fatalf("after EndOp: %d used, want %d", st.Leaf.UsedBlocks(), used)
	}
	if err := st.EndOp(); err == nil {
		t.Fatal("unbalanced EndOp accepted")
	}
}

func TestRunOpNesting(t *testing.T) {
	st := newStore(t)
	seg, _ := fillSegment(t, st, 2)
	err := st.RunOp(func() error {
		return st.RunOp(func() error {
			if err := st.FreeSegment(seg); err != nil {
				return err
			}
			if st.Leaf.UsedBlocks() == 0 {
				t.Fatal("inner EndOp applied frees while outer epoch open")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Leaf.UsedBlocks() != 0 {
		t.Fatal("frees not applied after outermost EndOp")
	}
}

func TestCrashCopySharesDisk(t *testing.T) {
	st := newStore(t)
	seg, data := fillSegment(t, st, 4)
	st2, err := st.CrashCopy()
	if err != nil {
		t.Fatal(err)
	}
	// Same disk: the data is visible; allocators start empty.
	got := make([]byte, len(data))
	if err := st2.ReadRange(Segment{Addr: seg.Addr, Pages: seg.Pages}, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("crash copy cannot see disk data")
	}
	if st2.Leaf.UsedBlocks() != 0 {
		t.Fatal("crash copy inherited allocation state")
	}
}
