package store

import (
	"encoding/binary"
	"fmt"
	"io"

	"lobstore/internal/buddy"
	"lobstore/internal/buffer"
	"lobstore/internal/disk"
	"lobstore/internal/sim"
)

// Store image format: a small header with the store-level parameters,
// followed by the disk image.
//
//	magic(4) version(2) pad(2) poolFrames(4) poolMaxRun(4) maxOrder(4)
const (
	storeImageMagic   = 0x4C4F4253 // "LOBS"
	storeImageVersion = 1
	storeImageHdrLen  = 20
)

// SaveImage persists the entire database: the buffer pool and the space
// manager directories are flushed first, then the disk (with all data and
// allocation state) is serialized. The resulting image reopens with
// OpenImage.
func (s *Store) SaveImage(w io.Writer) error {
	if err := s.Pool.FlushAll(); err != nil {
		return err
	}
	if err := s.Meta.Flush(); err != nil {
		return err
	}
	if err := s.Leaf.Flush(); err != nil {
		return err
	}
	var hdr [storeImageHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], storeImageMagic)
	binary.LittleEndian.PutUint16(hdr[4:], storeImageVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.Pool.Frames()))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(s.Pool.MaxRun()))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(s.maxOrder))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	return s.Disk.WriteImage(w)
}

// OpenImage reopens a database saved with SaveImage. The simulated clock
// starts a fresh timeline; allocation state is recovered from the buddy
// space directories.
func OpenImage(r io.Reader) (*Store, error) {
	var hdr [storeImageHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: reading image header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != storeImageMagic {
		return nil, fmt.Errorf("store: not a database image")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != storeImageVersion {
		return nil, fmt.Errorf("store: image version %d unsupported", v)
	}
	clock := sim.NewClock()
	d, err := disk.ReadImage(r, clock)
	if err != nil {
		return nil, err
	}
	pool, err := buffer.New(d, buffer.Config{
		Frames: int(binary.LittleEndian.Uint32(hdr[8:])),
		MaxRun: int(binary.LittleEndian.Uint32(hdr[12:])),
	})
	if err != nil {
		return nil, err
	}
	maxOrder := uint(binary.LittleEndian.Uint32(hdr[16:]))
	// Areas were created in a fixed order by Open: meta first, then leaf.
	const metaArea, leafArea = disk.AreaID(0), disk.AreaID(1)
	metaOrder := maxOrder
	if metaOrder > 10 {
		metaOrder = 10
	}
	meta, err := buddy.Open(d, metaArea, buddy.WithMaxOrder(metaOrder))
	if err != nil {
		return nil, fmt.Errorf("store: reopening meta allocator: %w", err)
	}
	leaf, err := buddy.Open(d, leafArea, buddy.WithMaxOrder(maxOrder))
	if err != nil {
		return nil, fmt.Errorf("store: reopening leaf allocator: %w", err)
	}
	return &Store{
		Disk:     d,
		Pool:     pool,
		Clock:    clock,
		Leaf:     leaf,
		Meta:     meta,
		leafArea: leafArea,
		maxOrder: maxOrder,
		pageSize: d.PageSize(),
	}, nil
}

// MetaArea returns the metadata area id (index pages, roots, catalogs).
func (s *Store) MetaArea() disk.AreaID { return disk.AreaID(0) }

// LeafArea returns the data area id (large object bytes).
func (s *Store) LeafArea() disk.AreaID { return s.leafArea }

// CrashCopy returns a new Store over the same simulated disk with a cold
// buffer pool and empty allocation state — the situation after a system
// failure: everything the old instance held only in memory (dirty pool
// pages, cached space directories, deferred frees) is gone. The caller
// must rebuild allocation state with RebuildAllocators before allocating.
func (s *Store) CrashCopy() (*Store, error) {
	pool, err := buffer.New(s.Disk, buffer.Config{Frames: s.Pool.Frames(), MaxRun: s.Pool.MaxRun()})
	if err != nil {
		return nil, err
	}
	metaOrder := s.maxOrder
	if metaOrder > 10 {
		metaOrder = 10
	}
	meta, err := buddy.New(s.Disk, s.MetaArea(), buddy.WithMaxOrder(metaOrder))
	if err != nil {
		return nil, err
	}
	leaf, err := buddy.New(s.Disk, s.leafArea, buddy.WithMaxOrder(s.maxOrder))
	if err != nil {
		return nil, err
	}
	return &Store{
		Disk:     s.Disk,
		Pool:     pool,
		Clock:    s.Clock,
		Leaf:     leaf,
		Meta:     meta,
		leafArea: s.leafArea,
		maxOrder: s.maxOrder,
		pageSize: s.pageSize,
	}, nil
}

// LoadAllocators replaces both allocators with ones decoded from the
// on-disk buddy space directories, trusting them as written. Recovery
// ignores the directories (they may be stale after a crash) and uses
// RebuildAllocators instead; LoadAllocators is for diagnostics such as
// fsck, which wants exactly the recorded allocation state so it can be
// cross-checked against reachability.
func (s *Store) LoadAllocators() error {
	metaOrder := s.maxOrder
	if metaOrder > 10 {
		metaOrder = 10
	}
	m, err := buddy.Open(s.Disk, s.MetaArea(), buddy.WithMaxOrder(metaOrder))
	if err != nil {
		return fmt.Errorf("store: loading meta allocator: %w", err)
	}
	l, err := buddy.Open(s.Disk, s.leafArea, buddy.WithMaxOrder(s.maxOrder))
	if err != nil {
		return fmt.Errorf("store: loading leaf allocator: %w", err)
	}
	s.Meta, s.Leaf = m, l
	return nil
}

// RebuildAllocators installs allocation state recovered from reachability:
// the union of the given page ranges is allocated, everything else is
// free. This is the recovery step of shadow paging — stale on-disk space
// directories are ignored and orphaned mid-operation allocations are
// reclaimed implicitly.
func (s *Store) RebuildAllocators(meta, leaf []buddy.Range) error {
	metaOrder := s.maxOrder
	if metaOrder > 10 {
		metaOrder = 10
	}
	m, err := buddy.FromReachable(s.Disk, s.MetaArea(), meta, buddy.WithMaxOrder(metaOrder))
	if err != nil {
		return fmt.Errorf("store: rebuilding meta allocator: %w", err)
	}
	l, err := buddy.FromReachable(s.Disk, s.leafArea, leaf, buddy.WithMaxOrder(s.maxOrder))
	if err != nil {
		return fmt.Errorf("store: rebuilding leaf allocator: %w", err)
	}
	s.Meta, s.Leaf = m, l
	return nil
}
