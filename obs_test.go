package lobstore_test

// Observability acceptance tests: the JSONL trace must agree exactly with
// the disk's own accounting, and the instrumentation must be free when no
// sink is attached.

import (
	"bytes"
	"errors"
	"testing"

	"lobstore"
	"lobstore/internal/obs"
)

// TestTraceFidelity replays a workload over all three managers with both a
// trace and a metrics registry attached, then checks that the I/O totals
// derived from the JSONL events equal the disk's sim stats exactly.
func TestTraceFidelity(t *testing.T) {
	db, err := lobstore.Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	db.EnableTrace(&trace)
	m := db.EnableMetrics(nil)
	base := db.Stats()
	hits0, misses0 := db.PoolHitRate()

	workout := func(newObj func() (lobstore.Object, error)) {
		t.Helper()
		obj, err := newObj()
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 300<<10)
		for i := range data {
			data[i] = byte(i)
		}
		if err := obj.Append(data); err != nil {
			t.Fatal(err)
		}
		if err := obj.Insert(1000, data[:40<<10]); err != nil {
			t.Fatal(err)
		}
		if err := obj.Replace(5000, data[:10<<10]); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		if err := obj.Read(2000, buf); err != nil {
			t.Fatal(err)
		}
		if err := obj.Delete(500, 100<<10); err != nil {
			t.Fatal(err)
		}
		if err := obj.Close(); err != nil {
			t.Fatal(err)
		}
	}
	workout(func() (lobstore.Object, error) { return db.NewESM(4) })
	workout(func() (lobstore.Object, error) { return db.NewEOS(4) })
	workout(func() (lobstore.Object, error) { return db.NewStarburst(0) })

	if err := db.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	want := db.Stats().Sub(base)

	var got lobstore.Stats
	var spanDepth, spanMax int
	var untagged int64
	err = obs.ReadJSONL(bytes.NewReader(trace.Bytes()), func(e obs.Event) error {
		switch e.Kind {
		case obs.KindIORead:
			got.ReadCalls++
			got.PagesRead += int64(e.Pages)
			got.SeekDistance += e.Aux1
			if e.Span == 0 {
				untagged++
			}
		case obs.KindIOWrite:
			got.WriteCalls++
			got.PagesWritten += int64(e.Pages)
			got.SeekDistance += e.Aux1
			if e.Span == 0 {
				untagged++
			}
		case obs.KindSpanBegin:
			spanDepth++
			if spanDepth > spanMax {
				spanMax = spanDepth
			}
		case obs.KindSpanEnd:
			spanDepth--
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if got.ReadCalls != want.ReadCalls || got.WriteCalls != want.WriteCalls ||
		got.PagesRead != want.PagesRead || got.PagesWritten != want.PagesWritten ||
		got.SeekDistance != want.SeekDistance {
		t.Fatalf("trace-derived totals %+v != sim stats %+v", got, want)
	}
	if spanDepth != 0 {
		t.Fatalf("%d spans left open at end of trace", spanDepth)
	}
	if spanMax < 1 {
		t.Fatal("no operation spans in trace")
	}
	if untagged != 0 {
		t.Fatalf("%d I/O events outside any operation span", untagged)
	}

	// The metrics registry watched the same event stream.
	if m.Counter("io.read.calls") != want.ReadCalls ||
		m.Counter("io.write.calls") != want.WriteCalls ||
		m.Counter("io.read.pages") != want.PagesRead ||
		m.Counter("io.write.pages") != want.PagesWritten ||
		m.Counter("io.seek.pages") != want.SeekDistance {
		t.Fatalf("metrics disagree with sim stats %+v", want)
	}
	hits, misses := db.PoolHitRate()
	if m.Counter("buf.hits") != hits-hits0 || m.Counter("buf.misses") != misses-misses0 {
		t.Fatalf("metrics buf %d/%d, pool saw %d/%d since attach",
			m.Counter("buf.hits"), m.Counter("buf.misses"), hits-hits0, misses-misses0)
	}
	if db.Metrics() != m {
		t.Fatal("Metrics() accessor does not return the attached registry")
	}
	for _, c := range []string{"op.append.count", "op.insert.count", "op.read.count",
		"op.delete.count", "op.replace.count", "op.close.count", "op.create.count"} {
		if m.Counter(c) == 0 {
			t.Errorf("counter %s never bumped", c)
		}
	}
}

// TestOffModeTraceUnchanged pins the coalescing flag gate at the trace
// level: with Coalesce off (the default, and the paper's configuration),
// identical workloads on fresh databases produce byte-identical JSONL
// traces containing zero elevator-scheduler events, and the metrics
// registry shows none of its counters. Any write-run or prefetch leaking
// into the default path would silently change the paper's I/O accounting.
func TestOffModeTraceUnchanged(t *testing.T) {
	run := func() ([]byte, *lobstore.Metrics) {
		db, err := lobstore.Open(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		db.EnableTrace(&trace)
		m := db.EnableMetrics(nil)
		obj, err := db.NewEOS(4)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 200<<10)
		for i := range data {
			data[i] = byte(i)
		}
		if err := obj.Append(data); err != nil {
			t.Fatal(err)
		}
		if err := obj.Insert(1000, data[:30<<10]); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		if err := obj.Read(2000, buf); err != nil {
			t.Fatal(err)
		}
		if err := obj.Delete(500, 50<<10); err != nil {
			t.Fatal(err)
		}
		if err := db.FlushTrace(); err != nil {
			t.Fatal(err)
		}
		return trace.Bytes(), m
	}

	a, m := run()
	b, _ := run()
	if !bytes.Equal(a, b) {
		t.Fatal("same workload, same config: traces differ with coalescing off")
	}
	err := obs.ReadJSONL(bytes.NewReader(a), func(e obs.Event) error {
		switch e.Kind {
		case obs.KindBufWriteRun, obs.KindBufPrefetch, obs.KindBufPrefetchHit:
			return errors.New("scheduler event " + e.Kind.String() + " in an off-mode trace")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"buf.writeruns", "buf.writerun.pages",
		"buf.prefetches", "buf.prefetch.pages", "buf.prefetch.hits"} {
		if n := m.Counter(c); n != 0 {
			t.Fatalf("off-mode metrics: %s = %d, want 0", c, n)
		}
	}

	// The concurrent engine sits above this path and must be completely
	// dark with Concurrent unset: no lock, snapshot or epoch activity may
	// leak into off-mode accounting (the traces compared above would
	// catch extra I/O; these counters catch the engine running at all).
	for _, c := range []string{"engine.lock.acquires", "engine.lock.cancels",
		"engine.snapshot.opens", "engine.epoch.retired", "engine.epoch.reclaimed"} {
		if n := m.Counter(c); n != 0 {
			t.Fatalf("off-mode metrics: %s = %d, want 0", c, n)
		}
	}
}

// TestSharedMetricsRegistry accumulates two databases into one registry.
func TestSharedMetricsRegistry(t *testing.T) {
	shared := lobstore.NewMetrics()
	var total int64
	for i := 0; i < 2; i++ {
		db, err := lobstore.Open(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if got := db.EnableMetrics(shared); got != shared {
			t.Fatal("EnableMetrics did not adopt the shared registry")
		}
		base := db.Stats()
		obj, err := db.NewEOS(4)
		if err != nil {
			t.Fatal(err)
		}
		if err := obj.Append(make([]byte, 100<<10)); err != nil {
			t.Fatal(err)
		}
		d := db.Stats().Sub(base)
		total += d.ReadCalls + d.WriteCalls
	}
	if got := shared.Counter("io.read.calls") + shared.Counter("io.write.calls"); got != total {
		t.Fatalf("shared registry saw %d I/O calls, databases did %d", got, total)
	}
}

// TestFailedOperationSpansCarryError checks that an injected I/O failure
// surfaces as an io.error event and an errored span end.
func TestFailedOperationSpansCarryError(t *testing.T) {
	db, err := lobstore.Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	db.EnableTrace(&trace)
	m := db.EnableMetrics(nil)
	obj, err := db.NewEOS(4)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected fault")
	db.InjectIOFailure(0, boom)
	if err := obj.Append(make([]byte, 64<<10)); !errors.Is(err, boom) {
		t.Fatalf("append returned %v, want injected fault", err)
	}
	db.InjectIOFailure(-1, nil)
	if err := db.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	var sawIOError, sawErroredSpan bool
	err = obs.ReadJSONL(bytes.NewReader(trace.Bytes()), func(e obs.Event) error {
		switch e.Kind {
		case obs.KindIOError:
			sawIOError = true
		case obs.KindSpanEnd:
			if e.Op == obs.OpAppend && e.Err != "" {
				sawErroredSpan = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawIOError {
		t.Error("trace has no io.error event")
	}
	if !sawErroredSpan {
		t.Error("trace has no errored append span")
	}
	if m.Counter("io.errors") != 1 || m.Counter("op.append.errors") != 1 {
		t.Errorf("metrics io.errors=%d op.append.errors=%d, want 1/1",
			m.Counter("io.errors"), m.Counter("op.append.errors"))
	}
}

// TestReadHotPathZeroAllocWhenDisabled pins the zero-overhead claim: with
// no sink attached, a large aligned sequential read — which bypasses the
// buffer pool and lands directly in the caller's buffer — performs zero
// allocations per operation.
func TestReadHotPathZeroAllocWhenDisabled(t *testing.T) {
	db, err := lobstore.Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps := db.PageSize()
	// A known-size field uses one maximal segment, so an aligned multi-page
	// read stays within a single extent.
	obj, err := db.NewStarburstKnownSize(0, int64(256*ps))
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Append(make([]byte, 256*ps)); err != nil {
		t.Fatal(err)
	}
	// 8 aligned pages exceed the pool's max buffered run, so the read goes
	// straight from the simulated disk into dst.
	dst := make([]byte, 8*ps)
	allocs := testing.AllocsPerRun(100, func() {
		if err := obj.Read(0, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled-observability read allocates %.1f times per op, want 0", allocs)
	}
}

// TestLeafFragmentationSnapshot sanity-checks the allocator snapshot.
func TestLeafFragmentationSnapshot(t *testing.T) {
	db, err := lobstore.Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db.NewEOS(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Append(make([]byte, 200<<10)); err != nil {
		t.Fatal(err)
	}
	// Fragment the area: punch holes in the middle of the object.
	for off := int64(10 << 10); off < 150<<10; off += 40 << 10 {
		if err := obj.Delete(off, 4<<10); err != nil {
			t.Fatal(err)
		}
	}
	after := db.LeafFragmentation()
	if after.FreeBlocks == 0 || after.FreeChunks == 0 {
		t.Fatalf("no free space tracked after carving: %+v", after)
	}
	if int64(after.LargestFree) > after.FreeBlocks {
		t.Fatalf("largest free run %d exceeds free total %d", after.LargestFree, after.FreeBlocks)
	}
	var chunks int64
	for _, c := range after.ByOrder {
		chunks += c
	}
	if chunks != after.FreeChunks {
		t.Fatalf("ByOrder sums to %d chunks, FreeChunks says %d", chunks, after.FreeChunks)
	}
	if idx := after.Index(); idx < 0 || idx > 1 {
		t.Fatalf("fragmentation index %f outside [0,1]", idx)
	}
	if after.String() == "" {
		t.Fatal("empty fragmentation string")
	}
}
