package lobstore_test

import (
	"bytes"
	"io"
	"testing"

	"lobstore"
)

func TestReaderWriterAdapters(t *testing.T) {
	db, err := lobstore.Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db.NewEOS(4)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("streaming bytes through io interfaces "), 3000) // ~114 KB

	// Write through io.Copy in odd-sized chunks.
	w := lobstore.NewWriter(obj)
	if _, err := io.Copy(w, bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if obj.Size() != int64(len(payload)) {
		t.Fatalf("size %d, want %d", obj.Size(), len(payload))
	}

	// Read everything back through io.ReadAll.
	r := lobstore.NewReader(obj)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("io.Reader round trip mismatch")
	}

	// Seek + partial read.
	if _, err := r.Seek(1000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 500)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[1000:1500]) {
		t.Fatal("seek+read mismatch")
	}
	if pos, err := r.Seek(-100, io.SeekEnd); err != nil || pos != int64(len(payload))-100 {
		t.Fatalf("seek end: pos=%d err=%v", pos, err)
	}
	rest, err := io.ReadAll(r)
	if err != nil || len(rest) != 100 {
		t.Fatalf("tail read: %d bytes, err=%v", len(rest), err)
	}

	// ReaderAt semantics, including the short-read EOF at the end.
	ra := lobstore.NewReader(obj)
	at := make([]byte, 200)
	if n, err := ra.ReadAt(at, int64(len(payload))-50); n != 50 || err != io.EOF {
		t.Fatalf("ReadAt near end: n=%d err=%v", n, err)
	}
	if !bytes.Equal(at[:50], payload[len(payload)-50:]) {
		t.Fatal("ReadAt content mismatch")
	}
	if _, err := ra.ReadAt(at, int64(len(payload))); err != io.EOF {
		t.Fatalf("ReadAt past end: %v", err)
	}
	if _, err := ra.ReadAt(at, -1); err == nil {
		t.Fatal("negative ReadAt offset accepted")
	}

	// Seek validation.
	if _, err := r.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
	if _, err := r.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("seek before start accepted")
	}
}
