package lobstore_test

import (
	"testing"

	"lobstore"
)

// TestInspectLayouts validates the Layout view of all three managers: the
// segments must tile the object exactly and page counts must be
// consistent with dense packing.
func TestInspectLayouts(t *testing.T) {
	db, err := lobstore.Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const size = 300_000
	for _, e := range []struct {
		name string
		open func() (lobstore.Object, error)
	}{
		{"esm", func() (lobstore.Object, error) { return db.NewESM(4) }},
		{"starburst", func() (lobstore.Object, error) { return db.NewStarburst(16) }},
		{"eos", func() (lobstore.Object, error) { return db.NewEOS(4) }},
	} {
		t.Run(e.name, func(t *testing.T) {
			obj, err := e.open()
			if err != nil {
				t.Fatal(err)
			}
			if err := obj.Append(make([]byte, size)); err != nil {
				t.Fatal(err)
			}
			if err := obj.Insert(1234, make([]byte, 5000)); err != nil {
				t.Fatal(err)
			}
			if err := obj.Close(); err != nil {
				t.Fatal(err)
			}
			l, err := lobstore.Inspect(obj)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for i, s := range l.Segments {
				if s.Bytes <= 0 || s.Pages <= 0 {
					t.Fatalf("segment %d: %+v", i, s)
				}
				if int64(s.Pages)*4096 < s.Bytes {
					t.Fatalf("segment %d holds %d bytes in %d pages", i, s.Bytes, s.Pages)
				}
				total += s.Bytes
			}
			if total != obj.Size() {
				t.Fatalf("layout covers %d bytes, object has %d", total, obj.Size())
			}
			if l.IndexPages < 1 {
				t.Fatal("no index pages reported")
			}
			// Utilization derived from the layout must agree with the
			// object's own accounting.
			var pages int64
			for _, s := range l.Segments {
				pages += int64(s.Pages)
			}
			if u := obj.Utilization(); u.DataPages != pages {
				t.Fatalf("layout pages %d, utilization reports %d", pages, u.DataPages)
			}
		})
	}
}
