package lobstore

import (
	"fmt"

	"lobstore/internal/buddy"
	"lobstore/internal/catalog"
	"lobstore/internal/core"
	"lobstore/internal/disk"
	"lobstore/internal/eos"
	"lobstore/internal/esm"
	"lobstore/internal/record"
	"lobstore/internal/starburst"
)

// Crash simulates a system failure followed by shadow-paging recovery and
// returns a fresh handle on the recovered database.
//
// The failure model is §3.3's: every write that completed reached the
// simulated disk, but everything held only in memory — dirty buffer pool
// pages, cached space directories, deferred frees — is lost, and any
// operation in flight is abandoned. Because updates shadow old pages and
// defer their frees past the commit point (the tree root or descriptor
// write), the on-disk state always contains a complete, consistent version
// of every object: the post-operation version if the commit was written,
// the pre-operation version otherwise.
//
// Recovery rebuilds allocation state from reachability: the catalog is the
// root set; every cataloged object (and every long field referenced from a
// record file) enumerates the pages it owns, and the buddy allocators are
// reconstructed as exactly that set. Orphaned pages from the interrupted
// operation become free automatically.
//
// Handles from before the crash — including obj — must not be used again.
func (db *DB) Crash() (*DB, error) {
	st, err := db.st.CrashCopy()
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Open(st, catalogAddr())
	if err != nil {
		return nil, fmt.Errorf("lobstore: recovery: %w", err)
	}

	var metaRanges, leafRanges []buddy.Range
	mark := func(a disk.Addr, pages int) error {
		r := buddy.Range{Addr: a, Pages: pages}
		if a.Area == st.LeafArea() {
			leafRanges = append(leafRanges, r)
		} else {
			metaRanges = append(metaRanges, r)
		}
		return nil
	}

	if err := cat.MarkPages(mark); err != nil {
		return nil, fmt.Errorf("lobstore: recovery: catalog pages: %w", err)
	}
	entries, err := cat.List()
	if err != nil {
		return nil, err
	}
	markObject := func(kind catalog.Kind, root disk.Addr) error {
		var m core.PageMarker
		switch kind {
		case catalog.KindESM:
			o, err := esm.Open(st, root)
			if err != nil {
				return err
			}
			m = o
		case catalog.KindStarburst:
			o, err := starburst.Open(st, root)
			if err != nil {
				return err
			}
			m = o
		case catalog.KindEOS:
			o, err := eos.Open(st, root)
			if err != nil {
				return err
			}
			m = o
		default:
			return fmt.Errorf("unknown kind %v", kind)
		}
		return m.MarkPages(mark)
	}
	for _, e := range entries {
		switch e.Kind {
		case catalog.KindRecord:
			f, err := record.OpenFile(st, e.Root)
			if err != nil {
				return nil, fmt.Errorf("lobstore: recovery: record file %q: %w", e.Name, err)
			}
			if err := f.MarkPages(mark); err != nil {
				return nil, err
			}
			refs, err := f.LongRefs()
			if err != nil {
				return nil, err
			}
			for _, ref := range refs {
				if err := markObject(ref.Kind, ref.Root); err != nil {
					return nil, fmt.Errorf("lobstore: recovery: long field of %q: %w", e.Name, err)
				}
			}
		default:
			if err := markObject(e.Kind, e.Root); err != nil {
				return nil, fmt.Errorf("lobstore: recovery: object %q: %w", e.Name, err)
			}
		}
	}
	if err := st.RebuildAllocators(metaRanges, leafRanges); err != nil {
		return nil, err
	}
	return &DB{st: st, cfg: db.cfg, cat: cat}, nil
}
