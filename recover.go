package lobstore

import (
	"fmt"

	"lobstore/internal/buddy"
	"lobstore/internal/catalog"
	"lobstore/internal/core"
	"lobstore/internal/disk"
	"lobstore/internal/eos"
	"lobstore/internal/esm"
	"lobstore/internal/record"
	"lobstore/internal/starburst"
	"lobstore/internal/store"
)

// scanReachable enumerates every page reachable from the catalog root set:
// the catalog chain itself, every cataloged object, and every long field
// referenced from a record file. Each range is reported with the name of
// its owner, so callers can rebuild allocation state (recovery, where the
// owner is irrelevant) or cross-check ownership (fsck, where a page with
// two owners is corruption).
//
// This is the heart of shadow-paging recovery (§3.3): the on-disk space
// directories may be stale after a crash, but the reachable set — and
// nothing else — is live.
func scanReachable(st *store.Store, cat *catalog.Catalog,
	mark func(owner string, addr disk.Addr, pages int) error) error {

	markFor := func(owner string) func(a disk.Addr, pages int) error {
		return func(a disk.Addr, pages int) error { return mark(owner, a, pages) }
	}
	if err := cat.MarkPages(markFor("catalog")); err != nil {
		return fmt.Errorf("catalog pages: %w", err)
	}
	entries, err := cat.List()
	if err != nil {
		return err
	}
	markObject := func(owner string, kind catalog.Kind, root disk.Addr) error {
		var m core.PageMarker
		switch kind {
		case catalog.KindESM:
			o, err := esm.Open(st, root)
			if err != nil {
				return err
			}
			m = o
		case catalog.KindStarburst:
			o, err := starburst.Open(st, root)
			if err != nil {
				return err
			}
			m = o
		case catalog.KindEOS:
			o, err := eos.Open(st, root)
			if err != nil {
				return err
			}
			m = o
		default:
			return fmt.Errorf("unknown kind %v", kind)
		}
		return m.MarkPages(markFor(owner))
	}
	for _, e := range entries {
		switch e.Kind {
		case catalog.KindRecord:
			f, err := record.OpenFile(st, e.Root)
			if err != nil {
				return fmt.Errorf("record file %q: %w", e.Name, err)
			}
			if err := f.MarkPages(markFor(e.Name)); err != nil {
				return err
			}
			refs, err := f.LongRefs()
			if err != nil {
				return err
			}
			for _, ref := range refs {
				owner := fmt.Sprintf("%s@%v", e.Name, ref.Root)
				if err := markObject(owner, ref.Kind, ref.Root); err != nil {
					return fmt.Errorf("long field of %q: %w", e.Name, err)
				}
			}
		default:
			if err := markObject(e.Name, e.Kind, e.Root); err != nil {
				return fmt.Errorf("object %q: %w", e.Name, err)
			}
		}
	}
	return nil
}

// recoverAllocators runs the reachability scan and rebuilds both buddy
// allocators as exactly the reachable set. Orphaned pages of an
// interrupted operation become free implicitly.
func recoverAllocators(st *store.Store, cat *catalog.Catalog) error {
	var metaRanges, leafRanges []buddy.Range
	err := scanReachable(st, cat, func(_ string, a disk.Addr, pages int) error {
		r := buddy.Range{Addr: a, Pages: pages}
		if a.Area == st.LeafArea() {
			leafRanges = append(leafRanges, r)
		} else {
			metaRanges = append(metaRanges, r)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return st.RebuildAllocators(metaRanges, leafRanges)
}

// Crash simulates a system failure followed by shadow-paging recovery and
// returns a fresh handle on the recovered database.
//
// The failure model is §3.3's: every write that completed reached the
// simulated disk, but everything held only in memory — dirty buffer pool
// pages, cached space directories, deferred frees — is lost, and any
// operation in flight is abandoned. Because updates shadow old pages and
// defer their frees past the commit point (the tree root or descriptor
// write), the on-disk state always contains a complete, consistent version
// of every object: the post-operation version if the commit was written,
// the pre-operation version otherwise.
//
// Recovery rebuilds allocation state from reachability: the catalog is the
// root set; every cataloged object (and every long field referenced from a
// record file) enumerates the pages it owns, and the buddy allocators are
// reconstructed as exactly that set. Orphaned pages from the interrupted
// operation become free automatically.
//
// Handles from before the crash — including obj — must not be used again.
func (db *DB) Crash() (*DB, error) {
	st, err := db.st.CrashCopy()
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Open(st, catalogAddr())
	if err != nil {
		return nil, fmt.Errorf("lobstore: recovery: %w", err)
	}
	if err := recoverAllocators(st, cat); err != nil {
		return nil, fmt.Errorf("lobstore: recovery: %w", err)
	}
	return &DB{st: st, cfg: db.cfg, cat: cat}, nil
}
