package lobstore_test

// One benchmark per table and figure of the paper's evaluation (§4). Each
// runs the corresponding harness experiment end to end and logs the
// regenerated table; the "sim-ms" metric is the simulated disk time the
// experiment accounted for, which is the quantity the paper reports.
//
// Benchmarks default to the quick scale (1 MB object) so `go test -bench=.`
// stays tractable; the full paper scale is one flag away:
//
//	go test -bench=Fig5 -benchtime=1x -paperscale
//	go run ./cmd/lobbench -exp all          # equivalent, nicer output
import (
	"flag"
	"strings"
	"testing"

	"lobstore"
	"lobstore/internal/harness"
	"lobstore/internal/workload"
)

var paperScale = flag.Bool("paperscale", false, "run benchmarks at the paper's 10 MB scale")

func benchConfig() harness.Config {
	if *paperScale {
		return harness.DefaultConfig()
	}
	return harness.QuickConfig()
}

// benchExperiment runs one named harness experiment per iteration. The
// runner is created once, outside the loop: the experiments share their
// simulation cells through the runner's cache by design, and a fresh
// runner per iteration would re-simulate every cell b.N times. The first
// (untimed) run fills the cache; timed iterations measure table assembly
// over cached cells. The simulated cost of the cells themselves is what
// lobbench's -benchjson records.
func benchExperiment(b *testing.B, name string) {
	e, ok := harness.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	r := harness.NewRunner(benchConfig())
	tables, err := e.Run(r)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	for _, t := range tables {
		if err := t.WriteText(&sb); err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + sb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Parameters(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkFig5BuildTime(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6SeqScan(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7ESMUtil(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8EOSUtil(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkTable2StarburstRead(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFig9ESMRead(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig10EOSRead(b *testing.B)          { benchExperiment(b, "fig10") }
func BenchmarkTable3StarburstUpdate(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig11ESMInsert(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12EOSInsert(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkDeleteCost(b *testing.B)            { benchExperiment(b, "deletes") }
func BenchmarkScaling(b *testing.B)               { benchExperiment(b, "scaling") }
func BenchmarkSummary(b *testing.B)               { benchExperiment(b, "summary") }

func BenchmarkAblationWholeLeafIO(b *testing.B) { benchExperiment(b, "ablation-wholeleaf") }
func BenchmarkAblationNoShadow(b *testing.B)    { benchExperiment(b, "ablation-noshadow") }
func BenchmarkAblationNoPoolRuns(b *testing.B)  { benchExperiment(b, "ablation-poolrun") }
func BenchmarkAblationBasicInsert(b *testing.B) { benchExperiment(b, "ablation-basicinsert") }

// --- implementation micro-benchmarks ---------------------------------------
// These measure the Go implementation itself (wall-clock ns/op), not the
// simulated disk: useful for keeping the simulator fast enough to run the
// paper-scale experiments.

func benchObject(b *testing.B, open func(db *lobstore.DB) (lobstore.Object, error), size int64) (*lobstore.DB, lobstore.Object) {
	b.Helper()
	cfg := lobstore.DefaultConfig()
	db, err := lobstore.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := open(db)
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.Build(obj, size, 256<<10); err != nil {
		b.Fatal(err)
	}
	return db, obj
}

func reportSim(b *testing.B, db *lobstore.DB) {
	b.ReportMetric(float64(db.Now().Milliseconds())/float64(b.N), "sim-ms/op")
}

func BenchmarkMicroESMRead10K(b *testing.B) {
	db, obj := benchObject(b, func(db *lobstore.DB) (lobstore.Object, error) { return db.NewESM(4) }, 4<<20)
	buf := make([]byte, 10<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i*9973) % (obj.Size() - int64(len(buf)))
		if err := obj.Read(off, buf); err != nil {
			b.Fatal(err)
		}
	}
	reportSim(b, db)
}

func BenchmarkMicroEOSInsertDelete(b *testing.B) {
	db, obj := benchObject(b, func(db *lobstore.DB) (lobstore.Object, error) { return db.NewEOS(4) }, 4<<20)
	data := make([]byte, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i*7919) % obj.Size()
		if err := obj.Insert(off, data); err != nil {
			b.Fatal(err)
		}
		if err := obj.Delete(off, int64(len(data))); err != nil {
			b.Fatal(err)
		}
	}
	reportSim(b, db)
}

func BenchmarkMicroStarburstAppend(b *testing.B) {
	cfg := lobstore.DefaultConfig()
	cfg.LeafAreaPages = 1 << 20 // plenty of space for b.N appends
	db, err := lobstore.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := db.NewStarburst(0)
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 32<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obj.Append(chunk); err != nil {
			b.Fatal(err)
		}
	}
	reportSim(b, db)
}

// BenchmarkMicroSequentialReadObsOff pins the observability layer's
// zero-overhead-when-disabled contract: the aligned large-segment read path
// must stay allocation-free with no sink attached (allocs/op must be 0).
func BenchmarkMicroSequentialReadObsOff(b *testing.B) {
	benchSequentialRead(b, false)
}

// BenchmarkMicroSequentialReadObsOn is the same read with a metrics sink
// attached, for before/after comparison of the tracing cost.
func BenchmarkMicroSequentialReadObsOn(b *testing.B) {
	benchSequentialRead(b, true)
}

func benchSequentialRead(b *testing.B, observe bool) {
	db, err := lobstore.Open(lobstore.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ps := db.PageSize()
	obj, err := db.NewStarburstKnownSize(0, int64(512*ps))
	if err != nil {
		b.Fatal(err)
	}
	if err := obj.Append(make([]byte, 512*ps)); err != nil {
		b.Fatal(err)
	}
	if observe {
		db.EnableMetrics(nil)
	}
	buf := make([]byte, 8*ps)
	steps := obj.Size() / int64(len(buf))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) % steps) * int64(len(buf))
		if err := obj.Read(off, buf); err != nil {
			b.Fatal(err)
		}
	}
	reportSim(b, db)
}
