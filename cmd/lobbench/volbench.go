package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"lobstore"
	"lobstore/internal/buffer"
	"lobstore/internal/disk"
	"lobstore/internal/filevol"
	"lobstore/internal/sim"
)

// Volume micro-benchmarks (BENCH_volume.json): raw throughput of the two
// byte-storage backends under the disk decorator's access pattern —
// 4-page runs, sequential and random, read and write, with the file
// backend measured both without fsync and with fsync-per-write. These pin
// the real-I/O cost of the durable volume against the in-memory baseline,
// so a regression in the pread/pwrite path or an accidental extra fsync
// shows up in CI.
const (
	volBenchPages    = 1024 // area size: 4 MB at 4 KB pages
	volBenchRunPages = 4    // run length per I/O call, the pool's MaxRun
)

// volBenchReport is the BENCH_volume.json schema.
type volBenchReport struct {
	PageSize int            `json:"page_size"`
	RunPages int            `json:"run_pages"`
	Cases    []volBenchCase `json:"cases"`
}

type volBenchCase struct {
	// Name is backend-pattern-op[-sync], e.g. "file-rand-write-sync",
	// pool-backend-writeback[-coalesce] for the buffer-pool cells, or
	// group-commit-N-pattern-append for the barrier-combiner cells.
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// WriteCalls and SimMs are reported by the pool write-back cells only:
	// disk write calls and simulated milliseconds per operation. The
	// coalesce variant must show both at a fraction of the plain one.
	WriteCalls float64 `json:"write_calls_per_op,omitempty"`
	SimMs      float64 `json:"sim_ms_per_op,omitempty"`
	// FsyncsPerOp and AvgBatch are reported by the group-commit cells:
	// device flushes per committed op and mean barriers acknowledged per
	// flush. Amortization shows as FsyncsPerOp ≈ 1/clients.
	FsyncsPerOp float64 `json:"fsyncs_per_op,omitempty"`
	AvgBatch    float64 `json:"avg_batch,omitempty"`
}

// volBenchAddrs returns the per-iteration run start pages: sequential
// wrap-around or a fixed-seed random sequence, so every backend measures
// the identical access pattern.
func volBenchAddrs(random bool) []disk.PageID {
	const n = 512
	out := make([]disk.PageID, n)
	if random {
		rng := rand.New(rand.NewSource(42))
		for i := range out {
			out[i] = disk.PageID(rng.Intn(volBenchPages - volBenchRunPages))
		}
		return out
	}
	for i := range out {
		out[i] = disk.PageID((i * volBenchRunPages) % (volBenchPages - volBenchRunPages))
	}
	return out
}

// benchVolume measures one (volume, pattern, op) cell. The area is fully
// written first so reads hit real bytes and writes never grow the file
// inside the timed loop.
func benchVolume(v disk.Volume, random, write bool) func(b *testing.B) {
	return func(b *testing.B) {
		pageSize := v.PageSize()
		if _, err := v.AddArea(volBenchPages); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, volBenchRunPages*pageSize)
		for i := range buf {
			buf[i] = byte(i)
		}
		for p := 0; p+volBenchRunPages <= volBenchPages; p += volBenchRunPages {
			if err := v.WriteRun(disk.Addr{Page: disk.PageID(p)}, volBenchRunPages, buf); err != nil {
				b.Fatal(err)
			}
		}
		if err := v.Sync(); err != nil {
			b.Fatal(err)
		}
		addrs := volBenchAddrs(random)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			addr := disk.Addr{Page: addrs[i%len(addrs)]}
			var err error
			if write {
				err = v.WriteRun(addr, volBenchRunPages, buf)
			} else {
				err = v.ReadRun(addr, volBenchRunPages, buf)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// poolBenchWindow is the dirty-run width of the pool write-back cells:
// wider than MaxRun so coalescing has something to merge, narrower than
// the frame count so the window fits the pool.
const poolBenchWindow = 8

// newPoolBench wraps a backend in the simulated disk and a 12-frame pool
// and materializes every page, so the timed loop never grows the file.
// Setup happens once per cell: the benchmark closure reruns with growing
// b.N against the same pool.
func newPoolBench(v disk.Volume, coalesce bool) (*buffer.Pool, *disk.Disk, error) {
	d, err := disk.New(sim.DefaultModel(), sim.NewClock(), disk.WithVolume(v))
	if err != nil {
		return nil, nil, err
	}
	if _, err := d.AddArea(volBenchPages); err != nil {
		return nil, nil, err
	}
	p, err := buffer.New(d, buffer.Config{
		Frames:   12,
		MaxRun:   volBenchRunPages,
		Coalesce: coalesce,
	})
	if err != nil {
		return nil, nil, err
	}
	buf := make([]byte, volBenchRunPages*d.PageSize())
	for pg := 0; pg+volBenchRunPages <= volBenchPages; pg += volBenchRunPages {
		if err := d.Write(disk.Addr{Page: disk.PageID(pg)}, volBenchRunPages, buf); err != nil {
			return nil, nil, err
		}
	}
	return p, d, nil
}

// benchPoolWriteback measures the buffer pool's dirty write-back through a
// backend: each op dirties an ascending poolBenchWindow-page run and
// flushes it. With coalescing off that is one disk write per page; the
// elevator scheduler merges the run into MaxRun-sized writes, and its
// read-ahead batches the demand misses too. writeCalls and simMs receive
// the per-op disk write calls and simulated milliseconds.
func benchPoolWriteback(p *buffer.Pool, d *disk.Disk, writeCalls, simMs *float64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		before := d.Stats()
		for i := 0; i < b.N; i++ {
			start := disk.PageID((i * poolBenchWindow) % (volBenchPages - poolBenchWindow))
			for k := disk.PageID(0); k < poolBenchWindow; k++ {
				h, err := p.FixPage(disk.Addr{Page: start + k})
				if err != nil {
					b.Fatal(err)
				}
				h.Data[0] = byte(i)
				h.Unfix(true)
			}
			if err := p.FlushAll(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		delta := d.Stats().Sub(before)
		*writeCalls = float64(delta.WriteCalls) / float64(b.N)
		*simMs = delta.Time.Seconds() * 1e3 / float64(b.N)
	}
}

// benchGroupCommit measures the sync-heavy multi-client append workload
// through the barrier combiner: clients goroutines each loop
// {WriteRun(own 4-page run in its stripe); Sync()} under policy commit, so
// every op pays a durability barrier. clients == 1 with batching off is
// the per-op-fsync baseline; larger cells open the volume with
// MaxBatch == clients and a 2 ms window, and the ≥5× throughput win at
// batch 16 is what BENCH CI guards. b.N is split across the clients; each
// reports one op per committed barrier.
func benchGroupCommit(v *filevol.Volume, clients int, random bool, fsyncsPerOp, avgBatch *float64) func(b *testing.B) {
	return func(b *testing.B) {
		pageSize := v.PageSize()
		if _, err := v.AddArea(volBenchPages); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, volBenchRunPages*pageSize)
		for i := range buf {
			buf[i] = byte(i)
		}
		// Materialize the whole area so the timed loop never grows the
		// files, then start everyone from a durable baseline.
		for p := 0; p+volBenchRunPages <= volBenchPages; p += volBenchRunPages {
			if err := v.WriteRun(disk.Addr{Page: disk.PageID(p)}, volBenchRunPages, buf); err != nil {
				b.Fatal(err)
			}
		}
		if err := v.SyncAll(); err != nil {
			b.Fatal(err)
		}
		stripe := volBenchPages / clients
		before := v.SyncStats()
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			n := b.N / clients
			if c < b.N%clients {
				n++
			}
			wg.Add(1)
			go func(c, n int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c)))
				base := c * stripe
				for i := 0; i < n; i++ {
					var p int
					if random {
						p = base + rng.Intn(stripe-volBenchRunPages)
					} else {
						p = base + (i*volBenchRunPages)%(stripe-volBenchRunPages)
					}
					if err := v.WriteRun(disk.Addr{Page: disk.PageID(p)}, volBenchRunPages, buf); err != nil {
						errCh <- err
						return
					}
					if err := v.Sync(); err != nil {
						errCh <- err
						return
					}
				}
			}(c, n)
		}
		wg.Wait()
		b.StopTimer()
		close(errCh)
		for err := range errCh {
			b.Fatal(err)
		}
		delta := v.SyncStats().Sub(before)
		if b.N > 0 {
			*fsyncsPerOp = float64(delta.Fsyncs) / float64(b.N)
		}
		if delta.Batches > 0 {
			*avgBatch = float64(delta.Barriers) / float64(delta.Batches)
		}
	}
}

// engineBenchRuns is the number of 4-page runs each engine-cell object is
// primed with; the timed loop replaces runs in place so the database
// never grows, however large b.N gets.
const engineBenchRuns = 64

// benchEngineClients measures the concurrent stack end to end: clients
// goroutines each own one named ESM object in a single file-backed
// database opened with Config.Concurrent, and every op replaces one
// 4-page run in place under the commit sync policy — so every op pays a
// durability barrier, exactly the contention the engine exists to
// amortize. Scaling beyond the 1-client cell comes from committers
// parked at their commit barriers batching into shared fsyncs instead of
// queueing single-file behind the store mutex.
func benchEngineClients(db *lobstore.DB, objs []lobstore.Object, pageSize int) func(b *testing.B) {
	return func(b *testing.B) {
		clients := len(objs)
		runBytes := volBenchRunPages * pageSize
		buf := make([]byte, runBytes)
		for i := range buf {
			buf[i] = byte(i)
		}
		// Prime each object once so the replaces always land in place.
		for _, obj := range objs {
			for obj.Size() < int64(engineBenchRuns*runBytes) {
				if err := obj.Append(buf); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			n := b.N / clients
			if c < b.N%clients {
				n++
			}
			wg.Add(1)
			go func(obj lobstore.Object, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					off := int64(i%engineBenchRuns) * int64(runBytes)
					if err := obj.Replace(off, buf); err != nil {
						errCh <- err
						return
					}
				}
			}(objs[c], n)
		}
		wg.Wait()
		b.StopTimer()
		close(errCh)
		for err := range errCh {
			b.Fatal(err)
		}
	}
}

// volumeBenchmarks runs the full backend × pattern × op × sync matrix.
func volumeBenchmarks(pageSize int) (*volBenchReport, error) {
	type cell struct {
		name   string
		open   func(dir string) (disk.Volume, error)
		random bool
		write  bool
	}
	memOpen := func(string) (disk.Volume, error) { return disk.NewMemVolume(pageSize), nil }
	fileOpen := func(policy filevol.Policy) func(dir string) (disk.Volume, error) {
		return func(dir string) (disk.Volume, error) {
			return filevol.Open(dir, pageSize, filevol.WithPolicy(policy))
		}
	}
	cells := []cell{
		{"mem-seq-read", memOpen, false, false},
		{"mem-rand-read", memOpen, true, false},
		{"mem-seq-write", memOpen, false, true},
		{"mem-rand-write", memOpen, true, true},
		// SyncNever isolates the pread/pwrite cost; -sync adds an fsync per
		// write (the SyncAlways policy), the durability tax ceiling.
		{"file-seq-read", fileOpen(filevol.SyncNever), false, false},
		{"file-rand-read", fileOpen(filevol.SyncNever), true, false},
		{"file-seq-write", fileOpen(filevol.SyncNever), false, true},
		{"file-rand-write", fileOpen(filevol.SyncNever), true, true},
		{"file-seq-write-sync", fileOpen(filevol.SyncAlways), false, true},
		{"file-rand-write-sync", fileOpen(filevol.SyncAlways), true, true},
	}
	rep := &volBenchReport{PageSize: pageSize, RunPages: volBenchRunPages}
	for _, c := range cells {
		dir, err := os.MkdirTemp("", "lobbench-vol-*")
		if err != nil {
			return nil, err
		}
		v, err := c.open(dir)
		if err != nil {
			return nil, err
		}
		res := testing.Benchmark(benchVolume(v, c.random, c.write))
		cerr := v.Close()
		rerr := os.RemoveAll(dir)
		if cerr != nil {
			return nil, cerr
		}
		if rerr != nil {
			return nil, rerr
		}
		bytesPerOp := float64(volBenchRunPages * pageSize)
		ns := float64(res.NsPerOp())
		mbps := 0.0
		if ns > 0 {
			mbps = bytesPerOp / ns * 1e9 / (1 << 20)
		}
		rep.Cases = append(rep.Cases, volBenchCase{
			Name:        c.name,
			NsPerOp:     ns,
			MBPerS:      mbps,
			AllocsPerOp: res.AllocsPerOp(),
		})
	}

	// Pool write-back cells: the same backends driven through the buffer
	// pool, with and without the elevator scheduler. The coalesce variants
	// document the win BENCH CI guards: fewer write calls and less
	// simulated time for identical page traffic.
	poolCells := []struct {
		name     string
		open     func(dir string) (disk.Volume, error)
		coalesce bool
	}{
		{"pool-mem-writeback", memOpen, false},
		{"pool-mem-writeback-coalesce", memOpen, true},
		{"pool-file-writeback", fileOpen(filevol.SyncNever), false},
		{"pool-file-writeback-coalesce", fileOpen(filevol.SyncNever), true},
	}
	for _, c := range poolCells {
		dir, err := os.MkdirTemp("", "lobbench-vol-*")
		if err != nil {
			return nil, err
		}
		v, err := c.open(dir)
		if err != nil {
			return nil, err
		}
		p, d, err := newPoolBench(v, c.coalesce)
		if err != nil {
			return nil, err
		}
		var writeCalls, simMs float64
		res := testing.Benchmark(benchPoolWriteback(p, d, &writeCalls, &simMs))
		cerr := v.Close()
		rerr := os.RemoveAll(dir)
		if cerr != nil {
			return nil, cerr
		}
		if rerr != nil {
			return nil, rerr
		}
		bytesPerOp := float64(poolBenchWindow * pageSize)
		ns := float64(res.NsPerOp())
		mbps := 0.0
		if ns > 0 {
			mbps = bytesPerOp / ns * 1e9 / (1 << 20)
		}
		rep.Cases = append(rep.Cases, volBenchCase{
			Name:        c.name,
			NsPerOp:     ns,
			MBPerS:      mbps,
			AllocsPerOp: res.AllocsPerOp(),
			WriteCalls:  writeCalls,
			SimMs:       simMs,
		})
	}

	// Group-commit cells: N concurrent committers, each op one durable
	// barrier. The 1-client cell is the per-op-fsync baseline the larger
	// batches are judged against.
	for _, clients := range []int{1, 4, 16, 64} {
		for _, random := range []bool{false, true} {
			pattern := "seq"
			if random {
				pattern = "rand"
			}
			name := fmt.Sprintf("group-commit-%d-%s-append", clients, pattern)
			dir, err := os.MkdirTemp("", "lobbench-vol-*")
			if err != nil {
				return nil, err
			}
			v, err := filevol.Open(dir, pageSize,
				filevol.WithPolicy(filevol.SyncCommit),
				filevol.WithGroupCommit(filevol.GroupCommit{
					MaxBatch: clients,
					MaxDelay: 2 * time.Millisecond,
				}))
			if err != nil {
				return nil, err
			}
			var fsyncsPerOp, avgBatch float64
			res := testing.Benchmark(benchGroupCommit(v, clients, random, &fsyncsPerOp, &avgBatch))
			cerr := v.Close()
			rerr := os.RemoveAll(dir)
			if cerr != nil {
				return nil, cerr
			}
			if rerr != nil {
				return nil, rerr
			}
			bytesPerOp := float64(volBenchRunPages * pageSize)
			ns := float64(res.NsPerOp())
			mbps := 0.0
			if ns > 0 {
				mbps = bytesPerOp / ns * 1e9 / (1 << 20)
			}
			rep.Cases = append(rep.Cases, volBenchCase{
				Name:        name,
				NsPerOp:     ns,
				MBPerS:      mbps,
				AllocsPerOp: res.AllocsPerOp(),
				FsyncsPerOp: fsyncsPerOp,
				AvgBatch:    avgBatch,
			})
		}
	}

	// Engine cells: the sync-heavy append workload once more, but through
	// the whole concurrent facade — object locks, store mutex, commit
	// barriers, group commit. The 1-client cell is the serial baseline;
	// the 16-client cell is the scaling claim benchdiff watches
	// (warn-only, like every wall-clock volume cell).
	for _, clients := range []int{1, 4, 16} {
		name := fmt.Sprintf("engine-%d-clients", clients)
		dir, err := os.MkdirTemp("", "lobbench-vol-*")
		if err != nil {
			return nil, err
		}
		cfg := lobstore.DefaultConfig()
		cfg.Backend = "file"
		cfg.Dir = dir
		cfg.SyncPolicy = "commit"
		cfg.Concurrent = true
		// Parked committers hold their dirty pages sticky in the shared
		// pool, so the paper's 12-frame default starves under overlap;
		// every cell gets the same enlarged pool to keep scaling honest.
		cfg.BufferPages = 256
		cfg.GroupCommit = lobstore.GroupCommit{MaxBatch: clients, MaxDelay: 2 * time.Millisecond}
		db, err := lobstore.Open(cfg)
		if err != nil {
			return nil, err
		}
		objs := make([]lobstore.Object, clients)
		mkErr := error(nil)
		for i := range objs {
			objs[i], mkErr = db.Create(fmt.Sprintf("c%d", i), lobstore.ObjectSpec{Engine: "esm", LeafPages: volBenchRunPages})
			if mkErr != nil {
				break
			}
		}
		var res testing.BenchmarkResult
		if mkErr == nil {
			res = testing.Benchmark(benchEngineClients(db, objs, pageSize))
		}
		cerr := db.Close()
		rerr := os.RemoveAll(dir)
		if mkErr != nil {
			return nil, mkErr
		}
		if cerr != nil {
			return nil, cerr
		}
		if rerr != nil {
			return nil, rerr
		}
		bytesPerOp := float64(volBenchRunPages * pageSize)
		ns := float64(res.NsPerOp())
		mbps := 0.0
		if ns > 0 {
			mbps = bytesPerOp / ns * 1e9 / (1 << 20)
		}
		rep.Cases = append(rep.Cases, volBenchCase{
			Name:        name,
			NsPerOp:     ns,
			MBPerS:      mbps,
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return rep, nil
}

func writeVolBenchJSON(path string, rep *volBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
