package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"lobstore/internal/disk"
	"lobstore/internal/filevol"
)

// Volume micro-benchmarks (BENCH_volume.json): raw throughput of the two
// byte-storage backends under the disk decorator's access pattern —
// 4-page runs, sequential and random, read and write, with the file
// backend measured both without fsync and with fsync-per-write. These pin
// the real-I/O cost of the durable volume against the in-memory baseline,
// so a regression in the pread/pwrite path or an accidental extra fsync
// shows up in CI.
const (
	volBenchPages    = 1024 // area size: 4 MB at 4 KB pages
	volBenchRunPages = 4    // run length per I/O call, the pool's MaxRun
)

// volBenchReport is the BENCH_volume.json schema.
type volBenchReport struct {
	PageSize int            `json:"page_size"`
	RunPages int            `json:"run_pages"`
	Cases    []volBenchCase `json:"cases"`
}

type volBenchCase struct {
	// Name is backend-pattern-op[-sync], e.g. "file-rand-write-sync".
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// volBenchAddrs returns the per-iteration run start pages: sequential
// wrap-around or a fixed-seed random sequence, so every backend measures
// the identical access pattern.
func volBenchAddrs(random bool) []disk.PageID {
	const n = 512
	out := make([]disk.PageID, n)
	if random {
		rng := rand.New(rand.NewSource(42))
		for i := range out {
			out[i] = disk.PageID(rng.Intn(volBenchPages - volBenchRunPages))
		}
		return out
	}
	for i := range out {
		out[i] = disk.PageID((i * volBenchRunPages) % (volBenchPages - volBenchRunPages))
	}
	return out
}

// benchVolume measures one (volume, pattern, op) cell. The area is fully
// written first so reads hit real bytes and writes never grow the file
// inside the timed loop.
func benchVolume(v disk.Volume, random, write bool) func(b *testing.B) {
	return func(b *testing.B) {
		pageSize := v.PageSize()
		if _, err := v.AddArea(volBenchPages); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, volBenchRunPages*pageSize)
		for i := range buf {
			buf[i] = byte(i)
		}
		for p := 0; p+volBenchRunPages <= volBenchPages; p += volBenchRunPages {
			if err := v.WriteRun(disk.Addr{Page: disk.PageID(p)}, volBenchRunPages, buf); err != nil {
				b.Fatal(err)
			}
		}
		if err := v.Sync(); err != nil {
			b.Fatal(err)
		}
		addrs := volBenchAddrs(random)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			addr := disk.Addr{Page: addrs[i%len(addrs)]}
			var err error
			if write {
				err = v.WriteRun(addr, volBenchRunPages, buf)
			} else {
				err = v.ReadRun(addr, volBenchRunPages, buf)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// volumeBenchmarks runs the full backend × pattern × op × sync matrix.
func volumeBenchmarks(pageSize int) (*volBenchReport, error) {
	type cell struct {
		name   string
		open   func(dir string) (disk.Volume, error)
		random bool
		write  bool
	}
	memOpen := func(string) (disk.Volume, error) { return disk.NewMemVolume(pageSize), nil }
	fileOpen := func(policy filevol.Policy) func(dir string) (disk.Volume, error) {
		return func(dir string) (disk.Volume, error) {
			return filevol.Open(dir, pageSize, filevol.WithPolicy(policy))
		}
	}
	cells := []cell{
		{"mem-seq-read", memOpen, false, false},
		{"mem-rand-read", memOpen, true, false},
		{"mem-seq-write", memOpen, false, true},
		{"mem-rand-write", memOpen, true, true},
		// SyncNever isolates the pread/pwrite cost; -sync adds an fsync per
		// write (the SyncAlways policy), the durability tax ceiling.
		{"file-seq-read", fileOpen(filevol.SyncNever), false, false},
		{"file-rand-read", fileOpen(filevol.SyncNever), true, false},
		{"file-seq-write", fileOpen(filevol.SyncNever), false, true},
		{"file-rand-write", fileOpen(filevol.SyncNever), true, true},
		{"file-seq-write-sync", fileOpen(filevol.SyncAlways), false, true},
		{"file-rand-write-sync", fileOpen(filevol.SyncAlways), true, true},
	}
	rep := &volBenchReport{PageSize: pageSize, RunPages: volBenchRunPages}
	for _, c := range cells {
		dir, err := os.MkdirTemp("", "lobbench-vol-*")
		if err != nil {
			return nil, err
		}
		v, err := c.open(dir)
		if err != nil {
			return nil, err
		}
		res := testing.Benchmark(benchVolume(v, c.random, c.write))
		cerr := v.Close()
		rerr := os.RemoveAll(dir)
		if cerr != nil {
			return nil, cerr
		}
		if rerr != nil {
			return nil, rerr
		}
		bytesPerOp := float64(volBenchRunPages * pageSize)
		ns := float64(res.NsPerOp())
		mbps := 0.0
		if ns > 0 {
			mbps = bytesPerOp / ns * 1e9 / (1 << 20)
		}
		rep.Cases = append(rep.Cases, volBenchCase{
			Name:        c.name,
			NsPerOp:     ns,
			MBPerS:      mbps,
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return rep, nil
}

func writeVolBenchJSON(path string, rep *volBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
