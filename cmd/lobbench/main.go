// Command lobbench regenerates the tables and figures of Biliris' SIGMOD
// 1992 study "The Performance of Three Database Storage Structures for
// Managing Large Objects".
//
// Usage:
//
//	lobbench -exp list                 # show available experiments
//	lobbench -exp fig5                 # one experiment at paper scale
//	lobbench -exp fig7,fig9,fig11      # several (mix runs are shared)
//	lobbench -exp all -quick -v        # everything, ~10x smaller, verbose
//	lobbench -exp table3 -csv out/     # also write CSV files
//	lobbench -exp all -parallel 1      # force the fully sequential path
//	lobbench -exp all -benchjson b.json -cpuprofile cpu.pprof
//	lobbench -exp fig7 -timeseries ts.json     # per-cell latency trajectories
//	lobbench -volbenchjson BENCH_volume.json   # backend micro-benchmarks only
//
// Experiments decompose into independent simulation cells that run on a
// worker pool (-parallel, default GOMAXPROCS); tables are assembled
// sequentially from the cached cells, so stdout and CSV output are
// byte-identical for every -parallel value.
//
// Results are aligned text tables on stdout; each carries the paper
// reference values in its note.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"lobstore"
	"lobstore/internal/harness"
	"lobstore/internal/sim"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment names, 'all', or 'list'")
		quick    = flag.Bool("quick", false, "run ~10x smaller (1 MB object, 1000 ops)")
		verbose  = flag.Bool("v", false, "print per-run progress to stderr")
		object   = flag.String("object", "", "object size override, e.g. 10M or 512K")
		ops      = flag.Int("ops", 0, "random-mix length override")
		seed     = flag.Int64("seed", 0, "workload seed override")
		csvDir   = flag.String("csv", "", "directory to also write one CSV per table")
		sample   = flag.Int("sample", 0, "figure mark spacing override")
		trace    = flag.String("trace", "", "write a JSONL event trace of every run to this file")
		metrics  = flag.Bool("metrics", false, "print an aggregated metrics report to stderr at the end")
		parallel = flag.Int("parallel", 0, "simulation cell workers; 0 = GOMAXPROCS, 1 = fully sequential")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
		benchOut = flag.String("benchjson", "", "write per-experiment wall/alloc/simulated-time measurements to this JSON file")
		coalesce = flag.Bool("coalesce", false, "enable elevator write coalescing and read-ahead (changes I/O counts: paper tables need it off)")
		conc     = flag.Bool("concurrent", false, "open each database through the concurrency engine (adds lock/epoch overhead: paper tables need it off)")
		volOut   = flag.String("volbenchjson", "", "run the volume backend micro-benchmarks, write them to this JSON file, and exit")
		tsOut    = flag.String("timeseries", "", "write per-cell flight-recorder windows (counters + latency percentiles over simulated time) to this JSON file")
		tsWindow = flag.Duration("tswindow", 10*time.Second, "flight-recorder window width in simulated time (with -timeseries)")
	)
	flag.Parse()

	if *expFlag == "list" {
		for _, e := range harness.Experiments {
			fmt.Printf("%-22s %s\n", e.Name, e.Desc)
		}
		return
	}

	if *volOut != "" {
		rep, err := volumeBenchmarks(sim.DefaultModel().PageSize)
		if err != nil {
			fatalf("volume benchmarks: %v", err)
		}
		if err := writeVolBenchJSON(*volOut, rep); err != nil {
			fatalf("writing volbenchjson: %v", err)
		}
		return
	}

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	if *object != "" {
		n, err := parseSize(*object)
		if err != nil {
			fatalf("bad -object: %v", err)
		}
		cfg.ObjectBytes = n
	}
	if *ops > 0 {
		cfg.MixOps = *ops
	}
	if *sample > 0 {
		cfg.SampleEvery = *sample
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.DB.Coalesce = *coalesce
	cfg.DB.Concurrent = *conc

	var names []string
	if *expFlag == "all" {
		names = harness.Names()
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	}
	for _, name := range names {
		if _, ok := harness.Lookup(name); !ok {
			fatalf("unknown experiment %q (try -exp list)", name)
		}
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	r := harness.NewRunner(cfg)
	if *verbose {
		r.Log = os.Stderr
	}
	// Per-cell telemetry feeds the benchjson percentile columns and the
	// timeseries artifact. It observes simulated time without advancing it,
	// so the tables stay byte-identical (pinned by a harness test).
	var tel *harness.Telemetry
	if *benchOut != "" || *tsOut != "" {
		tel = r.EnableTelemetry()
		if *tsOut != "" {
			tel.RecordTimeSeries(sim.Duration(tsWindow.Microseconds()), 512)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("creating %s: %v", *csvDir, err)
		}
	}

	// Observability: every database the runner opens shares one trace
	// stream and one metrics registry, so the output covers the whole
	// invocation.
	var (
		traceFile   *os.File
		traceWriter *lobstore.TraceWriter
		agg         *lobstore.Metrics
	)
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatalf("creating trace: %v", err)
		}
		traceFile = f
		traceWriter = lobstore.NewTraceWriter(f)
	}
	if *metrics {
		agg = lobstore.NewMetrics()
	}
	var tracker *benchTracker
	if *benchOut != "" {
		tracker = &benchTracker{}
	}
	if traceWriter != nil || agg != nil || tracker != nil {
		// The hook runs on worker goroutines under a parallel schedule; the
		// trace writer, metrics registry and tracker are all goroutine-safe.
		r.Observe = func(db *lobstore.DB) {
			if traceWriter != nil {
				db.AttachTrace(traceWriter)
			}
			if agg != nil {
				db.EnableMetrics(agg)
			}
			if tracker != nil {
				tracker.track(db)
			}
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("creating cpu profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatalf("closing cpu profile: %v", err)
			}
		}()
	}

	var report *benchReport
	if tracker != nil {
		report = &benchReport{Config: benchConfigInfo{
			Quick:       *quick,
			ObjectBytes: cfg.ObjectBytes,
			MixOps:      cfg.MixOps,
			Seed:        cfg.Seed,
			Workers:     workers,
		}}
	}

	// Phase 1: execute the simulation cells behind all requested experiments
	// on the worker pool. Phase 2 assembles tables sequentially from the
	// cached results, so the output is byte-identical for every -parallel
	// value (with -parallel 1 the prepass is skipped and each cell is
	// computed on demand during assembly, the fully sequential path).
	precompute := func() error { return r.Precompute(names, workers) }
	if tracker != nil && workers > 1 {
		phase, err := tracker.measurePhase("prepass", precompute)
		if err != nil {
			fatalf("%v", err)
		}
		report.Prepass = &phase
	} else if err := precompute(); err != nil {
		fatalf("%v", err)
	}

	emit := func(name string) error {
		e, _ := harness.Lookup(name)
		tables, err := e.Run(r)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, t := range tables {
			if err := t.WriteText(os.Stdout); err != nil {
				return fmt.Errorf("writing %s: %w", t.ID, err)
			}
			if *csvDir != "" {
				f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
				if err != nil {
					return fmt.Errorf("creating csv: %w", err)
				}
				if err := t.WriteCSV(f); err != nil {
					return fmt.Errorf("writing csv: %w", err)
				}
				if err := f.Close(); err != nil {
					return fmt.Errorf("closing csv: %w", err)
				}
			}
		}
		return nil
	}
	for _, name := range names {
		if tracker == nil {
			if err := emit(name); err != nil {
				fatalf("%v", err)
			}
			continue
		}
		phase, err := tracker.measurePhase(name, func() error { return emit(name) })
		if err != nil {
			fatalf("%v", err)
		}
		report.Experiments = append(report.Experiments, phase)
	}

	if report != nil && tel != nil {
		for i := range report.Experiments {
			h, err := tel.ExperimentWall(report.Experiments[i].Name)
			if err != nil || h.N() == 0 {
				continue
			}
			p := &report.Experiments[i]
			p.OpCount = h.N()
			p.OpWallP50Us = h.Quantile(0.50)
			p.OpWallP95Us = h.Quantile(0.95)
			p.OpWallP99Us = h.Quantile(0.99)
		}
		for _, ct := range tel.Cells() {
			bc := benchCell{Key: ct.Key, WallMs: float64(ct.WallUs()) / 1000}
			if mw := ct.MergedWall(); mw.N() > 0 {
				bc.OpCount = mw.N()
				bc.OpWallP50Us = mw.Quantile(0.50)
				bc.OpWallP95Us = mw.Quantile(0.95)
				bc.OpWallP99Us = mw.Quantile(0.99)
			}
			report.Cells = append(report.Cells, bc)
		}
	}
	if *tsOut != "" {
		if err := writeTimeSeriesJSON(*tsOut, tel); err != nil {
			fatalf("writing timeseries: %v", err)
		}
	}

	if report != nil {
		report.Micro = microBenchmarks()
		report.TotalSimMs = tracker.simSince(0)
		if report.Prepass != nil {
			report.TotalWallMs += report.Prepass.WallMs
		}
		for _, p := range report.Experiments {
			report.TotalWallMs += p.WallMs
		}
		if err := writeBenchJSON(*benchOut, report); err != nil {
			fatalf("writing benchjson: %v", err)
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatalf("creating mem profile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("writing mem profile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing mem profile: %v", err)
		}
	}

	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			fatalf("flushing trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("closing trace: %v", err)
		}
	}
	if agg != nil {
		if err := agg.WriteText(os.Stderr); err != nil {
			fatalf("writing metrics: %v", err)
		}
	}
}

// parseSize accepts raw bytes or K/M/G suffixes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("size must be positive")
	}
	return n * mult, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lobbench: "+format+"\n", args...)
	os.Exit(1)
}
