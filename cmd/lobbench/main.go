// Command lobbench regenerates the tables and figures of Biliris' SIGMOD
// 1992 study "The Performance of Three Database Storage Structures for
// Managing Large Objects".
//
// Usage:
//
//	lobbench -exp list                 # show available experiments
//	lobbench -exp fig5                 # one experiment at paper scale
//	lobbench -exp fig7,fig9,fig11      # several (mix runs are shared)
//	lobbench -exp all -quick -v        # everything, ~10x smaller, verbose
//	lobbench -exp table3 -csv out/     # also write CSV files
//
// Results are aligned text tables on stdout; each carries the paper
// reference values in its note.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"lobstore"
	"lobstore/internal/harness"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment names, 'all', or 'list'")
		quick   = flag.Bool("quick", false, "run ~10x smaller (1 MB object, 1000 ops)")
		verbose = flag.Bool("v", false, "print per-run progress to stderr")
		object  = flag.String("object", "", "object size override, e.g. 10M or 512K")
		ops     = flag.Int("ops", 0, "random-mix length override")
		seed    = flag.Int64("seed", 0, "workload seed override")
		csvDir  = flag.String("csv", "", "directory to also write one CSV per table")
		sample  = flag.Int("sample", 0, "figure mark spacing override")
		trace   = flag.String("trace", "", "write a JSONL event trace of every run to this file")
		metrics = flag.Bool("metrics", false, "print an aggregated metrics report to stderr at the end")
	)
	flag.Parse()

	if *expFlag == "list" {
		for _, e := range harness.Experiments {
			fmt.Printf("%-22s %s\n", e.Name, e.Desc)
		}
		return
	}

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	if *object != "" {
		n, err := parseSize(*object)
		if err != nil {
			fatalf("bad -object: %v", err)
		}
		cfg.ObjectBytes = n
	}
	if *ops > 0 {
		cfg.MixOps = *ops
	}
	if *sample > 0 {
		cfg.SampleEvery = *sample
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var names []string
	if *expFlag == "all" {
		names = harness.Names()
	} else {
		names = strings.Split(*expFlag, ",")
	}

	r := harness.NewRunner(cfg)
	if *verbose {
		r.Log = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("creating %s: %v", *csvDir, err)
		}
	}

	// Observability: every database the runner opens shares one trace
	// stream and one metrics registry, so the output covers the whole
	// invocation.
	var (
		traceFile   *os.File
		traceWriter *lobstore.TraceWriter
		agg         *lobstore.Metrics
	)
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatalf("creating trace: %v", err)
		}
		traceFile = f
		traceWriter = lobstore.NewTraceWriter(f)
	}
	if *metrics {
		agg = lobstore.NewMetrics()
	}
	if traceWriter != nil || agg != nil {
		r.Observe = func(db *lobstore.DB) {
			if traceWriter != nil {
				db.AttachTrace(traceWriter)
			}
			if agg != nil {
				db.EnableMetrics(agg)
			}
		}
	}

	for _, name := range names {
		name = strings.TrimSpace(name)
		e, ok := harness.Lookup(name)
		if !ok {
			fatalf("unknown experiment %q (try -exp list)", name)
		}
		tables, err := e.Run(r)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		for _, t := range tables {
			if err := t.WriteText(os.Stdout); err != nil {
				fatalf("writing %s: %v", t.ID, err)
			}
			if *csvDir != "" {
				f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
				if err != nil {
					fatalf("creating csv: %v", err)
				}
				if err := t.WriteCSV(f); err != nil {
					fatalf("writing csv: %v", err)
				}
				if err := f.Close(); err != nil {
					fatalf("closing csv: %v", err)
				}
			}
		}
	}

	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			fatalf("flushing trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("closing trace: %v", err)
		}
	}
	if agg != nil {
		if err := agg.WriteText(os.Stderr); err != nil {
			fatalf("writing metrics: %v", err)
		}
	}
}

// parseSize accepts raw bytes or K/M/G suffixes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("size must be positive")
	}
	return n * mult, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lobbench: "+format+"\n", args...)
	os.Exit(1)
}
