package main

import (
	"encoding/json"
	"os"

	"lobstore/internal/harness"
	"lobstore/internal/obs"
)

// tsCell is one cell's flight-recorder trajectory in the -timeseries JSON.
type tsCell struct {
	Key     string            `json:"key"`
	WallUs  int64             `json:"wall_us"`
	Dropped int64             `json:"dropped,omitempty"`
	Windows []obs.WindowStats `json:"windows"`
}

// tsReport is the -timeseries JSON schema: one flight-recorder trajectory
// per simulation cell, sorted by cell key so the artifact is deterministic
// up to wall-clock fields.
type tsReport struct {
	WindowUs int64    `json:"window_us"`
	Cells    []tsCell `json:"cells"`
}

// writeTimeSeriesJSON renders every cell's sealed windows to path.
func writeTimeSeriesJSON(path string, tel *harness.Telemetry) error {
	rep := tsReport{}
	for _, ct := range tel.Cells() {
		if ct.Series == nil {
			continue
		}
		if rep.WindowUs == 0 {
			rep.WindowUs = ct.Series.WindowUs()
		}
		rep.Cells = append(rep.Cells, tsCell{
			Key:     ct.Key,
			WallUs:  ct.WallUs(),
			Dropped: ct.Series.Dropped(),
			Windows: ct.Series.Windows(),
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
