package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"100":  100,
		"4K":   4096,
		"4k":   4096,
		"10M":  10 << 20,
		"2G":   2 << 30,
		"512K": 512 << 10,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "-5", "0", "1.5M", "K"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) succeeded", bad)
		}
	}
}
