package main

import (
	"encoding/json"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"lobstore"
	"lobstore/internal/buffer"
	"lobstore/internal/disk"
	"lobstore/internal/engine"
	"lobstore/internal/sim"
	"lobstore/internal/wire"
)

// benchReport is the BENCH_harness.json schema: per-experiment wall time,
// Go allocations, GC cycles, heap size and simulated disk time, wall-clock
// operation latency percentiles per experiment and per cell, plus
// allocation micro-benchmarks of the I/O hot paths. CI regenerates it at
// quick scale on every push and benchdiff gates on the p99 columns.
type benchReport struct {
	Config      benchConfigInfo `json:"config"`
	Prepass     *benchPhase     `json:"prepass,omitempty"`
	Experiments []benchPhase    `json:"experiments"`
	Cells       []benchCell     `json:"cells,omitempty"`
	Micro       []microResult   `json:"micro"`
	TotalSimMs  float64         `json:"total_sim_ms"`
	TotalWallMs float64         `json:"total_wall_ms"`
}

type benchConfigInfo struct {
	Quick       bool  `json:"quick"`
	ObjectBytes int64 `json:"object_bytes"`
	MixOps      int   `json:"mix_ops"`
	Seed        int64 `json:"seed"`
	Workers     int   `json:"workers"`
}

// benchPhase records one experiment's assembly (or the parallel prepass):
// wall-clock time, resource stats, and the simulated disk time accumulated
// by the databases opened during the phase. The op-wall percentile fields
// cover every operation span of every cell behind the experiment — merged
// from the per-cell telemetry HDRs, so they are filled however the cells
// were scheduled — and stay zero when telemetry is off or the experiment
// has no cell decomposition.
type benchPhase struct {
	Name      string  `json:"name"`
	WallMs    float64 `json:"wall_ms"`
	Allocs    uint64  `json:"allocs"`
	GCCycles  uint32  `json:"gc_cycles"`
	HeapBytes uint64  `json:"heap_bytes"`
	SimMs     float64 `json:"sim_ms"`

	OpCount     int64 `json:"op_count,omitempty"`
	OpWallP50Us int64 `json:"op_wall_p50_us,omitempty"`
	OpWallP95Us int64 `json:"op_wall_p95_us,omitempty"`
	OpWallP99Us int64 `json:"op_wall_p99_us,omitempty"`
}

// benchCell records one simulation cell: its wall-clock computation time and
// the wall-clock latency percentiles of the operation spans it executed.
type benchCell struct {
	Key         string  `json:"key"`
	WallMs      float64 `json:"wall_ms"`
	OpCount     int64   `json:"op_count,omitempty"`
	OpWallP50Us int64   `json:"op_wall_p50_us,omitempty"`
	OpWallP95Us int64   `json:"op_wall_p95_us,omitempty"`
	OpWallP99Us int64   `json:"op_wall_p99_us,omitempty"`
}

type microResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchTracker attributes simulated time to phases by remembering every
// database the runner opens. Observe runs on worker goroutines under a
// parallel schedule, hence the mutex.
type benchTracker struct {
	mu  sync.Mutex
	dbs []*lobstore.DB
}

func (t *benchTracker) track(db *lobstore.DB) {
	t.mu.Lock()
	t.dbs = append(t.dbs, db)
	t.mu.Unlock()
}

func (t *benchTracker) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.dbs)
}

// simSince sums the simulated clocks of the databases opened at index from
// onward. Called only between phases, when no worker is running.
func (t *benchTracker) simSince(from int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ms float64
	for _, db := range t.dbs[from:] {
		ms += float64(db.Now().Milliseconds())
	}
	return ms
}

// measurePhase runs fn and returns its wall time, allocation count, and the
// simulated time of databases opened while it ran.
func (t *benchTracker) measurePhase(name string, fn func() error) (benchPhase, error) {
	from := t.count()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchPhase{
		Name:      name,
		WallMs:    float64(wall.Microseconds()) / 1000,
		Allocs:    after.Mallocs - before.Mallocs,
		GCCycles:  after.NumGC - before.NumGC,
		HeapBytes: after.HeapAlloc,
		SimMs:     t.simSince(from),
	}, err
}

// microBenchmarks measures the allocation behaviour of the I/O hot paths
// via testing.Benchmark: the buffer pool's multi-page hit path, the
// simulated disk's materialized read, the engine lock manager's
// uncontended cycle, and the wire protocol's loopback round trip at
// pipeline depths 1 and 16. All were (or guard against becoming)
// allocation sites; the JSON keeps them pinned.
func microBenchmarks() []microResult {
	specs := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"FixRunHit4", benchFixRunHit},
		{"DiskReadMaterialized4", benchDiskReadMaterialized},
		{"DiskSequentialWriteGrow", benchDiskWriteGrow},
		{"LockUncontended", benchLockUncontended},
		{"WireRoundTripSerial", func(b *testing.B) { benchWireRoundTrip(b, 1) }},
		{"WireRoundTripPipelined", func(b *testing.B) { benchWireRoundTrip(b, 16) }},
	}
	out := make([]microResult, 0, len(specs))
	for _, s := range specs {
		res := testing.Benchmark(s.fn)
		out = append(out, microResult{
			Name:        s.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return out
}

// benchFixRunHit measures a 4-page FixRun with all pages resident — the
// sequential-scan fast path.
func benchFixRunHit(b *testing.B) {
	d, err := disk.New(sim.DefaultModel(), sim.NewClock())
	if err != nil {
		b.Fatal(err)
	}
	aid, err := d.AddArea(64)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := buffer.New(d, buffer.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	addr := disk.Addr{Area: aid, Page: 8}
	hs, err := pool.FixRun(addr, 4)
	if err != nil {
		b.Fatal(err)
	}
	buffer.UnfixAll(hs, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs, err := pool.FixRun(addr, 4)
		if err != nil {
			b.Fatal(err)
		}
		buffer.UnfixAll(hs, false)
	}
}

// benchLockUncontended measures the lock manager's fast path: one
// goroutine cycling a shared then exclusive lock on one object with
// nobody waiting — the fixed per-request overhead of the serving path.
func benchLockUncontended(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	if err := engine.LockCycle(b.N); err != nil {
		b.Fatal(err)
	}
}

// benchWireRoundTrip measures b.N empty round trips against a loopback
// echo peer with depth requests kept in flight: depth 1 is the serial
// protocol, depth 16 shows what request pipelining recovers from the
// per-round-trip socket latency.
func benchWireRoundTrip(b *testing.B, depth int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close() //lobvet:ignore errdiscard — benchmark teardown
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close() //lobvet:ignore errdiscard — benchmark teardown
		r := wire.NewReader(conn, 0)
		var hdr [wire.HeaderSize]byte
		var body []byte
		for {
			h, err := r.Next()
			if err != nil {
				return
			}
			if body, err = r.Payload(h, body); err != nil {
				return
			}
			wire.PutHeader(hdr[:], wire.Header{Type: wire.RespOK, Flags: wire.FlagLast, ReqID: h.ReqID, Len: 8})
			var ok [8]byte
			if _, err := (&net.Buffers{hdr[:], ok[:]}).WriteTo(conn); err != nil {
				return
			}
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close() //lobvet:ignore errdiscard — benchmark teardown
	r := wire.NewReader(conn, 0)
	var hdr [wire.HeaderSize]byte
	var body []byte
	b.ReportAllocs()
	b.ResetTimer()
	inflight := 0
	drain := func() {
		h, err := r.Next()
		if err != nil {
			b.Fatal(err)
		}
		if body, err = r.Payload(h, body); err != nil {
			b.Fatal(err)
		}
		inflight--
	}
	for i := 0; i < b.N; i++ {
		wire.PutHeader(hdr[:], wire.Header{Type: wire.OpPing, Flags: wire.FlagLast, ReqID: uint32(i), Len: 0})
		if _, err := conn.Write(hdr[:]); err != nil {
			b.Fatal(err)
		}
		inflight++
		for inflight >= depth {
			drain()
		}
	}
	for inflight > 0 {
		drain()
	}
}

// benchDiskReadMaterialized measures a 4-page materialized disk read into a
// reused buffer.
func benchDiskReadMaterialized(b *testing.B) {
	d, err := disk.New(sim.DefaultModel(), sim.NewClock())
	if err != nil {
		b.Fatal(err)
	}
	aid, err := d.AddArea(64)
	if err != nil {
		b.Fatal(err)
	}
	addr := disk.Addr{Area: aid, Page: 0}
	buf := make([]byte, 4*d.PageSize())
	if err := d.Write(addr, 4, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Read(addr, 4, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDiskWriteGrow measures sequential writes that keep growing the
// materialized area, exercising the amortized backing-store growth.
func benchDiskWriteGrow(b *testing.B) {
	d, err := disk.New(sim.DefaultModel(), sim.NewClock())
	if err != nil {
		b.Fatal(err)
	}
	npages := 1 << 20
	aid, err := d.AddArea(npages)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, d.PageSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := disk.Addr{Area: aid, Page: disk.PageID(i % npages)}
		if err := d.Write(addr, 1, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func writeBenchJSON(path string, rep *benchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
