package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs lobvet with args, returning the exit code and combined
// output.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "lobvet-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	code := run(args, f, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

func TestList(t *testing.T) {
	code, out := capture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, name := range []string{"fixunfix", "spanend", "determinism", "errdiscard", "barrierorder", "locksafe"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestCleanPackage(t *testing.T) {
	code, out := capture(t, "./internal/sim")
	if code != 0 {
		t.Fatalf("exit %d over a clean package:\n%s", code, out)
	}
}

func TestOnlySelectsAnalyzers(t *testing.T) {
	code, out := capture(t, "-only", "determinism,errdiscard", "./internal/sim")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code, _ := capture(t, "-only", "nope"); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
}

func TestBadPattern(t *testing.T) {
	if code, _ := capture(t, "./no/such/dir"); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
}

func TestSARIFOutput(t *testing.T) {
	sarif := filepath.Join(t.TempDir(), "out.sarif")
	code, out := capture(t, "-sarif", sarif, "./internal/sim")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF file is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "lobvet" {
		t.Fatalf("unexpected SARIF shape: %s", data)
	}
}

// TestBaselineRoundTripCLI regenerates a baseline over a clean package
// and then checks against it: both invocations must exit 0.
func TestBaselineRoundTripCLI(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	code, out := capture(t, "-baseline", baseline, "-write-baseline", "./internal/sim")
	if code != 0 || !strings.Contains(out, "baseline") {
		t.Fatalf("write-baseline: exit %d:\n%s", code, out)
	}
	code, out = capture(t, "-baseline", baseline, "./internal/sim")
	if code != 0 {
		t.Fatalf("check against fresh baseline: exit %d:\n%s", code, out)
	}
}

func TestWriteBaselineRequiresBaseline(t *testing.T) {
	if code, _ := capture(t, "-write-baseline", "./internal/sim"); code != 2 {
		t.Fatalf("-write-baseline without -baseline: exit %d, want 2", code)
	}
}

func TestMissingBaselineFile(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-baseline.json")
	if code, _ := capture(t, "-baseline", missing, "./internal/sim"); code != 2 {
		t.Fatalf("missing baseline file: exit %d, want 2", code)
	}
}
