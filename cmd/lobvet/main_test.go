package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs lobvet with args, returning the exit code and combined
// output.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "lobvet-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	code := run(args, f, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

func TestList(t *testing.T) {
	code, out := capture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, name := range []string{"fixunfix", "spanend", "determinism", "errdiscard"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestCleanPackage(t *testing.T) {
	code, out := capture(t, "./internal/sim")
	if code != 0 {
		t.Fatalf("exit %d over a clean package:\n%s", code, out)
	}
}

func TestOnlySelectsAnalyzers(t *testing.T) {
	code, out := capture(t, "-only", "determinism,errdiscard", "./internal/sim")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code, _ := capture(t, "-only", "nope"); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
}

func TestBadPattern(t *testing.T) {
	if code, _ := capture(t, "./no/such/dir"); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
}
