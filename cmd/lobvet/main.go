// Command lobvet runs the storage-engine invariant analyzers of
// internal/analysis over this module:
//
//	go run ./cmd/lobvet ./...
//
// Analyzers: fixunfix (every buffer pool fix is unfixed on all paths),
// spanend (every tracing span is ended), determinism (no wall clock or
// global math/rand inside simulation packages), errdiscard (no silently
// dropped errors; %w over %v for wrapped errors).
//
// A finding is suppressed by an explained comment on the offending line
// or the one above:
//
//	//lobvet:ignore fixunfix handle ownership transfers to the caller
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lobstore/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lobvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	verbose := fs.Bool("v", false, "also print suppressed findings with their justifications")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lobvet [flags] [packages]\n\npackages default to ./...\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "lobvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "lobvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "lobvet: %v\n", err)
		return 2
	}
	loader.Tests = *tests

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "lobvet: %v\n", err)
		return 2
	}

	findings, suppressed := 0, 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "lobvet: %v\n", err)
			return 2
		}
		for _, d := range analysis.Run(pkg, analyzers) {
			if d.Suppressed {
				suppressed++
				if *verbose {
					fmt.Fprintf(stdout, "%s [suppressed: %s]\n", d, d.SuppressReason)
				}
				continue
			}
			findings++
			fmt.Fprintln(stdout, d)
		}
	}
	if *verbose || findings > 0 {
		fmt.Fprintf(stdout, "lobvet: %d finding(s), %d suppressed, %d package(s)\n",
			findings, suppressed, len(dirs))
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
