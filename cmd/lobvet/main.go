// Command lobvet runs the storage-engine invariant analyzers of
// internal/analysis over this module:
//
//	go run ./cmd/lobvet ./...
//
// Analyzers: fixunfix (every buffer pool fix is unfixed on all paths),
// spanend (every tracing span is ended), determinism (no wall clock or
// global math/rand inside simulation packages), errdiscard (no silently
// dropped errors; %w over %v for wrapped errors), barrierorder (§3.3
// commit ordering on engine mutation paths), locksafe (unlock on all
// paths, lock-ordering lattice, no durability work under a latch).
//
// All loaded packages share one interprocedural summary program, so a
// helper releasing a handle in another package still counts at the call
// site. A finding is suppressed by an explained comment on the offending
// line or the one above; stale suppressions are themselves reported.
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lobstore/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lobvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	verbose := fs.Bool("v", false, "also print suppressed and baselined findings")
	sarifPath := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	baselinePath := fs.String("baseline", "", "committed baseline file; findings recorded there warn instead of failing")
	writeBaseline := fs.Bool("write-baseline", false, "regenerate the -baseline file from the current findings and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lobvet [flags] [packages]\n\npackages default to ./...\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "lobvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintf(stderr, "lobvet: -write-baseline requires -baseline\n")
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "lobvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "lobvet: %v\n", err)
		return 2
	}
	loader.Tests = *tests

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "lobvet: %v\n", err)
		return 2
	}

	// Load everything first: the interprocedural summaries want the whole
	// package set before the first analyzer runs.
	pkgs := make([]*analysis.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "lobvet: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	prog := analysis.NewProgram(loader.Packages())

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunProgram(prog, pkg, analyzers)...)
	}

	if *writeBaseline {
		b := analysis.NewBaseline(root, diags)
		if err := b.Write(*baselinePath); err != nil {
			fmt.Fprintf(stderr, "lobvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "lobvet: baseline %s written with %d finding(s)\n",
			*baselinePath, len(b.Findings))
		return 0
	}
	stale := 0
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "lobvet: %v\n", err)
			return 2
		}
		stale = b.Apply(root, diags)
	}

	findings, suppressed, baselined := 0, 0, 0
	for _, d := range diags {
		switch {
		case d.Suppressed:
			suppressed++
			if *verbose {
				fmt.Fprintf(stdout, "%s [suppressed: %s]\n", d, d.SuppressReason)
			}
		case d.Baselined:
			baselined++
			if *verbose {
				fmt.Fprintf(stdout, "%s [baselined]\n", d)
			}
		default:
			findings++
			fmt.Fprintln(stdout, d)
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintf(stderr, "lobvet: %v\n", err)
			return 2
		}
		werr := analysis.WriteSARIF(f, root, analyzers, diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "lobvet: writing SARIF: %v\n", werr)
			return 2
		}
	}

	if *verbose || findings > 0 || baselined > 0 {
		fmt.Fprintf(stdout, "lobvet: %d finding(s), %d baselined, %d suppressed, %d package(s)\n",
			findings, baselined, suppressed, len(dirs))
	}
	if stale > 0 {
		fmt.Fprintf(stdout, "lobvet: %d baseline entr(ies) no longer match any finding: regenerate with -write-baseline\n", stale)
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
