package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lobstore/internal/loadgen"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"4096", 4096, false},
		{"4K", 4 << 10, false},
		{"4k", 4 << 10, false},
		{"256K", 256 << 10, false},
		{"2M", 2 << 20, false},
		{"1m", 1 << 20, false},
		{"", 0, true},
		{"K", 0, true},
		{"-1", 0, true},
		{"4G", 0, true},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseSize(%q) err = %v, want err %v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRecordUpsert(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_server.json")

	// Create, then add a second case, then replace the first.
	if err := record(path, "a", &loadgen.Result{Mode: "closed", Clients: 1, OpsPerSec: 100}); err != nil {
		t.Fatal(err)
	}
	if err := record(path, "b", &loadgen.Result{Mode: "open", Clients: 4, OpsPerSec: 200}); err != nil {
		t.Fatal(err)
	}
	if err := record(path, "a", &loadgen.Result{Mode: "closed", Clients: 1, OpsPerSec: 300}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(a.ServerCases) != 2 {
		t.Fatalf("got %d cases, want 2", len(a.ServerCases))
	}
	if a.ServerCases[0].Name != "a" || a.ServerCases[0].OpsPerSec != 300 {
		t.Errorf("case a = %+v, want replaced ops/s 300", a.ServerCases[0])
	}
	if a.ServerCases[1].Name != "b" || a.ServerCases[1].OpsPerSec != 200 {
		t.Errorf("case b = %+v", a.ServerCases[1])
	}
}

func TestRecordRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := record(path, "a", &loadgen.Result{}); err == nil {
		t.Fatal("record over a corrupt artifact should fail, not clobber it")
	}
}
