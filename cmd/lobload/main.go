// Command lobload drives a running lobserve with an open- or closed-loop
// synthetic workload and reports wall-clock latency percentiles, following
// the discipline distinction of Schroeder et al. (Open Versus Closed): in
// closed loop each of -clients keeps exactly one request in flight, so
// latency is service time; with -rate R the generator switches to open
// loop, issuing requests on a fixed schedule and measuring latency from
// each request's *scheduled* start, which corrects for coordinated
// omission.
//
//	$ lobload -addr 127.0.0.1:7431 -clients 16 -duration 5s -slo 2ms
//	$ lobload -addr 127.0.0.1:7431 -rate 5000 -duration 10s
//
// The working set is -objects large objects preloaded to -object-bytes
// each; the op mix is set by integer weights (-read/-append/-insert/
// -delete/-stat) and key choice is uniform, Zipf-skewed (-zipf) or
// hotspot (-hot-frac/-hot-set).
//
// With -json FILE the run is recorded as a named case in a
// BENCH_server.json artifact (creating the file or replacing the case in
// place), the format cmd/benchdiff compares across commits:
//
//	$ lobload -addr ... -clients 16 -name closed-16 -json BENCH_server.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lobstore/internal/loadgen"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7431", "lobserve TCP address")
		objects    = flag.Int("objects", 16, "working-set size in objects")
		objBytes   = flag.String("object-bytes", "256K", "preloaded size of each object (K/M suffixes)")
		engine     = flag.String("engine", "eos", "engine for created objects: esm, starburst or eos")
		param      = flag.Int("param", 0, "engine parameter (0 = ESM leaf 4 / EOS threshold 16 / Starburst allocator max)")
		readBytes  = flag.String("read-bytes", "4096", "read request size (K/M suffixes)")
		writeBytes = flag.String("write-bytes", "4096", "append/insert payload size (K/M suffixes)")
		mixRead    = flag.Int("read", 80, "read weight in the op mix")
		mixAppend  = flag.Int("append", 20, "append weight in the op mix")
		mixInsert  = flag.Int("insert", 0, "insert weight in the op mix")
		mixDelete  = flag.Int("delete", 0, "delete weight in the op mix")
		mixStat    = flag.Int("stat", 0, "stat weight in the op mix")
		zipf       = flag.Float64("zipf", 0, "Zipf key skew exponent (>1 enables; 0 = uniform)")
		hotFrac    = flag.Float64("hot-frac", 0, "fraction of requests sent to the hot set (0 = uniform)")
		hotSet     = flag.Int("hot-set", 1, "number of objects in the hot set")
		seed       = flag.Int64("seed", 1, "RNG seed for reproducible key/op sequences")
		clients    = flag.Int("clients", 1, "closed-loop multiprogramming level (worker count in open loop)")
		rate       = flag.Float64("rate", 0, "open-loop target request rate per second (0 = closed loop)")
		duration   = flag.Duration("duration", time.Second, "measured interval, after preload")
		slo        = flag.Duration("slo", 0, "latency objective for goodput (0 = disabled)")
		name       = flag.String("name", "", "case name for the -json artifact")
		jsonPath   = flag.String("json", "", "record the run as a case in this BENCH_server.json file")
	)
	flag.Parse()

	ob, err := parseSize(*objBytes)
	if err != nil {
		fatalf("-object-bytes: %v", err)
	}
	rb, err := parseSize(*readBytes)
	if err != nil {
		fatalf("-read-bytes: %v", err)
	}
	wb, err := parseSize(*writeBytes)
	if err != nil {
		fatalf("-write-bytes: %v", err)
	}
	code, err := loadgen.EngineCode(*engine)
	if err != nil {
		fatalf("%v", err)
	}
	if *jsonPath != "" && *name == "" {
		fatalf("-json requires -name")
	}

	spec := loadgen.Spec{
		Addr:        *addr,
		Objects:     *objects,
		ObjectBytes: ob,
		Engine:      code,
		Param:       uint32(*param),
		ReadBytes:   int(rb),
		WriteBytes:  int(wb),
		Mix: loadgen.Mix{
			Read: *mixRead, Append: *mixAppend, Insert: *mixInsert,
			Delete: *mixDelete, Stat: *mixStat,
		},
		Zipf:       *zipf,
		HotFrac:    *hotFrac,
		HotSet:     *hotSet,
		Seed:       *seed,
		Clients:    *clients,
		TargetRate: *rate,
		Duration:   *duration,
		SLOMicros:  slo.Microseconds(),
	}
	res, err := loadgen.Run(spec)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("%s loop, %d clients", res.Mode, res.Clients)
	if res.TargetRate > 0 {
		fmt.Printf(", target %.0f req/s", res.TargetRate)
	}
	fmt.Printf(": %d ops in %.0fms = %.0f ops/s (%d errors)\n",
		res.Ops, res.ElapsedMs, res.OpsPerSec, res.Errors)
	fmt.Printf("latency µs: mean %.1f  p50 %d  p95 %d  p99 %d  max %d\n",
		res.MeanUs, res.P50Us, res.P95Us, res.P99Us, res.MaxUs)
	if res.SLOUs > 0 {
		fmt.Printf("goodput at %dµs SLO: %.0f ops/s\n", res.SLOUs, res.GoodputOpsPerSec)
	}

	if *jsonPath != "" {
		if err := record(*jsonPath, *name, res); err != nil {
			fatalf("recording %s: %v", *jsonPath, err)
		}
		fmt.Printf("recorded case %q in %s\n", *name, *jsonPath)
	}
}

// serverCase is one named run in a BENCH_server.json artifact.
type serverCase struct {
	Name string `json:"name"`
	*loadgen.Result
}

// artifact is the BENCH_server.json layout cmd/benchdiff ingests.
type artifact struct {
	ServerCases []serverCase `json:"server_cases"`
}

// record upserts the run as a named case in the artifact at path, so a
// baseline script can accumulate several lobload invocations in one file.
func record(path, name string, res *loadgen.Result) error {
	var a artifact
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &a); err != nil {
			return fmt.Errorf("existing artifact: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	replaced := false
	for i := range a.ServerCases {
		if a.ServerCases[i].Name == name {
			a.ServerCases[i].Result = res
			replaced = true
			break
		}
	}
	if !replaced {
		a.ServerCases = append(a.ServerCases, serverCase{Name: name, Result: res})
	}
	out, err := json.MarshalIndent(&a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// parseSize parses a byte count with optional K/M suffix (powers of two).
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lobload: "+format+"\n", args...)
	os.Exit(1)
}
