package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lobstore"
)

func TestRunOnImage(t *testing.T) {
	cfg := lobstore.DefaultConfig()
	cfg.LeafAreaPages = 1 << 14
	cfg.MetaAreaPages = 1 << 12
	cfg.MaxSegmentPages = 256
	db, err := lobstore.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db.Create("clip", lobstore.ObjectSpec{Engine: "eos", Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Append(bytes.Repeat([]byte{7}, 100_000)); err != nil {
		t.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRecordFile("meta"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.img")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"clip", "eos", "100000 bytes", "record file", "seg", "pages in use"} {
		if !strings.Contains(out, want) {
			t.Errorf("lobstat output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOnGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, os.Stdout); err == nil {
		t.Fatal("garbage image accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing"), false, os.Stdout); err == nil {
		t.Fatal("missing file accepted")
	}
}
