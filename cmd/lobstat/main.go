// Command lobstat inspects a saved database image: the catalog, each
// object's size, utilization and physical layout, and overall space use.
//
//	lobbench …                 # run experiments
//	lobctl …                   # drive one object interactively
//	lobstat db.img             # what is inside this database?
//	lobstat -v db.img          # include per-segment layout
package main

import (
	"flag"
	"fmt"
	"os"

	"lobstore"
)

func main() {
	verbose := flag.Bool("v", false, "print per-segment layout of every object")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lobstat [-v] <image-file>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verbose, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "lobstat: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, verbose bool, out *os.File) error {
	db, err := lobstore.OpenFile(path)
	if err != nil {
		return err
	}
	cfg := db.Config()
	fmt.Fprintf(out, "database image %s\n", path)
	fmt.Fprintf(out, "  page size %d, max segment %d pages, pool %d/%d\n",
		cfg.PageSize, cfg.MaxSegmentPages, cfg.BufferPages, cfg.MaxBufferedRun)

	infos, err := db.Objects()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %d cataloged object(s)\n\n", len(infos))
	var totalBytes, totalPages int64
	for _, info := range infos {
		if info.Engine == "records" {
			rf, err := db.OpenRecordFile(info.Name)
			if err != nil {
				return err
			}
			_ = rf
			fmt.Fprintf(out, "%-24s %-10s (record file)\n", info.Name, info.Engine)
			continue
		}
		obj, err := db.OpenObject(info.Name)
		if err != nil {
			return err
		}
		u := obj.Utilization()
		l, err := lobstore.Inspect(obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-24s %-10s %10d bytes  %4d segment(s)  %5.1f%% util  %d index page(s)\n",
			info.Name, info.Engine, obj.Size(), len(l.Segments), 100*u.Ratio(), l.IndexPages)
		totalBytes += obj.Size()
		totalPages += u.DataPages + u.IndexPages
		if verbose {
			for i, s := range l.Segments {
				fmt.Fprintf(out, "    seg %4d: page %-8d x%-5d %10d bytes\n", i, s.StartPage, s.Pages, s.Bytes)
			}
		}
	}
	dataPages, metaPages := db.SpaceInUse()
	fmt.Fprintf(out, "\ntotals: %d object bytes; %d data + %d metadata pages in use\n",
		totalBytes, dataPages, metaPages)
	_ = totalPages
	return nil
}
