// Command lobtrace summarizes and compares the JSONL event traces written
// by lobbench -trace, lobctl -trace, or lobstore's EnableTrace.
//
// Usage:
//
//	lobtrace summary trace.jsonl           # aggregated metrics report
//	lobtrace summary -csv trace.jsonl      # same, as CSV rows
//	lobtrace diff a.jsonl b.jsonl          # counter deltas between traces
//	lobtrace timeline trace.jsonl          # per-window latency trajectory
//	lobtrace timeline a.jsonl b.jsonl      # window-by-window comparison
//
// A trace holds one JSON object per line with short keys (t: simulated
// microseconds, k: event kind, op: operation, sp: span, a/p/n: area, start
// page and page count, x1/x2: kind-specific values, err: error text).
// Summary replays the events through the same aggregating registry the
// library uses, so its report matches what -metrics would have printed
// live. Diff aggregates both traces and prints the counters that changed —
// a quick way to see what a tuning knob did to the I/O mix. Timeline
// replays a trace into the flight recorder and prints one row per window
// of simulated time — latency percentiles come from the simulated clock
// only, because traces deliberately omit wall-clock durations (they would
// break byte-identical traces across runs). With two files the windows are
// aligned by index, "-" marking windows present in only one run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lobstore/internal/obs"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "summary":
		if err := summary(args[1:]); err != nil {
			fatalf("summary: %v", err)
		}
	case "diff":
		if err := diff(args[1:]); err != nil {
			fatalf("diff: %v", err)
		}
	case "timeline":
		if err := timeline(args[1:]); err != nil {
			fatalf("timeline: %v", err)
		}
	default:
		fatalf("unknown command %q (summary, diff, timeline)", args[0])
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  lobtrace summary [-csv] trace.jsonl
  lobtrace diff a.jsonl b.jsonl
  lobtrace timeline [-window D] trace.jsonl [b.jsonl]
`)
}

// load replays one trace file into a fresh metrics registry.
func load(path string) (*obs.Metrics, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	m := obs.NewMetrics()
	var events int64
	err = obs.ReadJSONL(f, func(e obs.Event) error {
		m.Record(e)
		events++
		return nil
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return m, events, nil
}

func summary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	asCSV := fs.Bool("csv", false, "emit CSV rows instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file")
	}
	m, events, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asCSV {
		return m.WriteCSV(os.Stdout)
	}
	fmt.Printf("%s: %d events\n", fs.Arg(0), events)
	return m.WriteText(os.Stdout)
}

func diff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("want exactly two trace files")
	}
	ma, _, err := load(args[0])
	if err != nil {
		return err
	}
	mb, _, err := load(args[1])
	if err != nil {
		return err
	}
	names := union(ma.CounterNames(), mb.CounterNames())
	fmt.Printf("%-24s %12s %12s %12s\n", "counter", "a", "b", "delta")
	var changed int
	for _, n := range names {
		a, b := ma.Counter(n), mb.Counter(n)
		if a == b {
			continue
		}
		changed++
		fmt.Printf("%-24s %12d %12d %+12d\n", n, a, b, b-a)
	}
	if changed == 0 {
		fmt.Println("no counter differences")
	}
	pairs := [][2]*obs.Histogram{
		{ma.IOSize, mb.IOSize},
		{ma.Seek, mb.Seek},
		{ma.Depth, mb.Depth},
		{ma.WriteRun, mb.WriteRun},
	}
	// Per-op latency histograms are created lazily, so an operation may have
	// a histogram in one trace and none (nil) in the other — e.g. diffing a
	// read-only run against a mixed run. Emit such rows one-sided instead of
	// skipping or misaligning them.
	for _, op := range obs.Ops() {
		a, b := ma.OpLat[op], mb.OpLat[op]
		if a == nil && b == nil {
			continue
		}
		pairs = append(pairs, [2]*obs.Histogram{a, b})
	}
	for _, pair := range pairs {
		a, b := pair[0], pair[1]
		if histEmpty(a) && histEmpty(b) {
			continue
		}
		name := ""
		if a != nil {
			name = a.Name
		} else {
			name = b.Name
		}
		fmt.Printf("%-24s mean %s -> %s %s, max %s -> %s\n",
			name, histMean(a), histMean(b), histUnit(a, b), histMax(a), histMax(b))
	}
	return nil
}

// timeline replays one or two traces into a flight recorder and prints one
// row per window of simulated time. Percentiles are simulated-time only:
// traces omit wall-clock span durations by design.
func timeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	window := fs.Duration("window", 10*time.Second, "window width in simulated time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 && fs.NArg() != 2 {
		return fmt.Errorf("want one or two trace files")
	}
	windowUs := window.Microseconds()
	if windowUs < 1 {
		return fmt.Errorf("window %v too small (min 1µs)", *window)
	}
	wa, err := loadTimeline(fs.Arg(0), windowUs)
	if err != nil {
		return err
	}
	if fs.NArg() == 1 {
		fmt.Printf("%s: %d windows of %v simulated time (latencies are simulated µs)\n",
			fs.Arg(0), len(wa), *window)
		fmt.Printf("%8s %12s %8s %8s %7s %8s %8s %8s\n",
			"window", "start_us", "events", "ios", "hit%", "p50", "p95", "p99")
		for _, w := range wa {
			fmt.Printf("%8d %12d %8d %8d %7s %8s %8s %8s\n",
				w.Index, w.StartUs, w.Events, windowIOs(&w), windowHit(&w),
				windowQ(&w, 50), windowQ(&w, 95), windowQ(&w, 99))
		}
		return nil
	}
	wb, err := loadTimeline(fs.Arg(1), windowUs)
	if err != nil {
		return err
	}
	fmt.Printf("a=%s b=%s: windows of %v simulated time (latencies are simulated µs)\n",
		fs.Arg(0), fs.Arg(1), *window)
	fmt.Printf("%8s %10s %10s %10s %10s %10s %10s\n",
		"window", "events a", "events b", "p99 a", "p99 b", "ios a", "ios b")
	for _, pair := range alignWindows(wa, wb) {
		a, b := pair[0], pair[1]
		idx := windowIndex(a, b)
		fmt.Printf("%8d %10s %10s %10s %10s %10s %10s\n",
			idx, windowEvents(a), windowEvents(b),
			windowQPtr(a, 99), windowQPtr(b, 99), windowIOsPtr(a), windowIOsPtr(b))
	}
	return nil
}

// loadTimeline replays one trace into a fresh flight recorder and returns
// its sealed windows. The ring is sized far beyond any realistic trace so
// offline replay never drops history.
func loadTimeline(path string, windowUs int64) ([]obs.WindowStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ts := obs.NewTimeSeries(windowUs, 1<<20)
	err = obs.ReadJSONL(f, func(e obs.Event) error {
		ts.Record(e)
		return nil
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	_ = ts.Close()
	return ts.Windows(), nil
}

// alignWindows pairs two window sequences by window index. Idle windows are
// never materialized, so either side of a pair may be nil — the renderer
// shows those as "-".
func alignWindows(a, b []obs.WindowStats) [][2]*obs.WindowStats {
	var out [][2]*obs.WindowStats
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i].Index < b[j].Index):
			out = append(out, [2]*obs.WindowStats{&a[i], nil})
			i++
		case i == len(a) || b[j].Index < a[i].Index:
			out = append(out, [2]*obs.WindowStats{nil, &b[j]})
			j++
		default:
			out = append(out, [2]*obs.WindowStats{&a[i], &b[j]})
			i, j = i+1, j+1
		}
	}
	return out
}

func windowIndex(a, b *obs.WindowStats) int64 {
	if a != nil {
		return a.Index
	}
	return b.Index
}

// windowIOs sums the I/O call counters of one window.
func windowIOs(w *obs.WindowStats) int64 {
	return w.Counters["io.read.calls"] + w.Counters["io.write.calls"]
}

// windowHit formats the buffer hit rate, "-" when no lookups happened.
func windowHit(w *obs.WindowStats) string {
	if w.Counters["buf.hits"]+w.Counters["buf.misses"] == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*w.HitRate)
}

// windowQ formats the window's whole-window simulated percentile, "-" when
// the window saw no spans.
func windowQ(w *obs.WindowStats, pct int) string {
	if w.SimAll == nil {
		return "-"
	}
	switch pct {
	case 50:
		return fmt.Sprintf("%d", w.SimAll.P50Us)
	case 95:
		return fmt.Sprintf("%d", w.SimAll.P95Us)
	default:
		return fmt.Sprintf("%d", w.SimAll.P99Us)
	}
}

func windowEvents(w *obs.WindowStats) string {
	if w == nil {
		return "-"
	}
	return fmt.Sprintf("%d", w.Events)
}

func windowQPtr(w *obs.WindowStats, pct int) string {
	if w == nil {
		return "-"
	}
	return windowQ(w, pct)
}

func windowIOsPtr(w *obs.WindowStats) string {
	if w == nil {
		return "-"
	}
	return fmt.Sprintf("%d", windowIOs(w))
}

// histEmpty reports whether h is absent or has no samples.
func histEmpty(h *obs.Histogram) bool { return h == nil || h.N == 0 }

// histMean formats a histogram's mean, "-" when the histogram is absent.
func histMean(h *obs.Histogram) string {
	if h == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f", h.Mean())
}

// histMax formats a histogram's max, "-" when the histogram is absent.
func histMax(h *obs.Histogram) string {
	if h == nil {
		return "-"
	}
	return fmt.Sprintf("%d", h.Max)
}

// histUnit returns the unit of whichever side exists.
func histUnit(a, b *obs.Histogram) string {
	if a != nil {
		return a.Unit
	}
	return b.Unit
}

// union merges two sorted string slices, dropping duplicates.
func union(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lobtrace: "+format+"\n", args...)
	os.Exit(1)
}
