// Command lobtrace summarizes and compares the JSONL event traces written
// by lobbench -trace, lobctl -trace, or lobstore's EnableTrace.
//
// Usage:
//
//	lobtrace summary trace.jsonl           # aggregated metrics report
//	lobtrace summary -csv trace.jsonl      # same, as CSV rows
//	lobtrace diff a.jsonl b.jsonl          # counter deltas between traces
//
// A trace holds one JSON object per line with short keys (t: simulated
// microseconds, k: event kind, op: operation, sp: span, a/p/n: area, start
// page and page count, x1/x2: kind-specific values, err: error text).
// Summary replays the events through the same aggregating registry the
// library uses, so its report matches what -metrics would have printed
// live. Diff aggregates both traces and prints the counters that changed —
// a quick way to see what a tuning knob did to the I/O mix.
package main

import (
	"flag"
	"fmt"
	"os"

	"lobstore/internal/obs"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "summary":
		if err := summary(args[1:]); err != nil {
			fatalf("summary: %v", err)
		}
	case "diff":
		if err := diff(args[1:]); err != nil {
			fatalf("diff: %v", err)
		}
	default:
		fatalf("unknown command %q (summary, diff)", args[0])
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  lobtrace summary [-csv] trace.jsonl
  lobtrace diff a.jsonl b.jsonl
`)
}

// load replays one trace file into a fresh metrics registry.
func load(path string) (*obs.Metrics, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	m := obs.NewMetrics()
	var events int64
	err = obs.ReadJSONL(f, func(e obs.Event) error {
		m.Record(e)
		events++
		return nil
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return m, events, nil
}

func summary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	asCSV := fs.Bool("csv", false, "emit CSV rows instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file")
	}
	m, events, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asCSV {
		return m.WriteCSV(os.Stdout)
	}
	fmt.Printf("%s: %d events\n", fs.Arg(0), events)
	return m.WriteText(os.Stdout)
}

func diff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("want exactly two trace files")
	}
	ma, _, err := load(args[0])
	if err != nil {
		return err
	}
	mb, _, err := load(args[1])
	if err != nil {
		return err
	}
	names := union(ma.CounterNames(), mb.CounterNames())
	fmt.Printf("%-24s %12s %12s %12s\n", "counter", "a", "b", "delta")
	var changed int
	for _, n := range names {
		a, b := ma.Counter(n), mb.Counter(n)
		if a == b {
			continue
		}
		changed++
		fmt.Printf("%-24s %12d %12d %+12d\n", n, a, b, b-a)
	}
	if changed == 0 {
		fmt.Println("no counter differences")
	}
	for _, pair := range [][2]*obs.Histogram{
		{ma.IOSize, mb.IOSize},
		{ma.Seek, mb.Seek},
		{ma.Depth, mb.Depth},
		{ma.WriteRun, mb.WriteRun},
	} {
		a, b := pair[0], pair[1]
		if a.N == 0 && b.N == 0 {
			continue
		}
		fmt.Printf("%-24s mean %.1f -> %.1f %s, max %d -> %d\n",
			a.Name, a.Mean(), b.Mean(), a.Unit, a.Max, b.Max)
	}
	return nil
}

// union merges two sorted string slices, dropping duplicates.
func union(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lobtrace: "+format+"\n", args...)
	os.Exit(1)
}
