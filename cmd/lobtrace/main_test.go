package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lobstore"
)

// writeTrace runs a small workload with tracing enabled and returns the
// trace file path plus the stats the run accumulated.
func writeTrace(t *testing.T, dir, name string, appendBytes int) (string, lobstore.Stats) {
	t.Helper()
	cfg := lobstore.DefaultConfig()
	cfg.LeafAreaPages = 1 << 14
	cfg.MetaAreaPages = 1 << 12
	cfg.MaxSegmentPages = 512
	db, err := lobstore.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	db.EnableTrace(f)
	base := db.Stats()
	obj, err := db.NewEOS(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Append(make([]byte, appendBytes)); err != nil {
		t.Fatal(err)
	}
	if err := obj.Insert(100, make([]byte, 10<<10)); err != nil {
		t.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, db.Stats().Sub(base)
}

func TestLoadAgreesWithStats(t *testing.T) {
	dir := t.TempDir()
	path, stats := writeTrace(t, dir, "a.jsonl", 100<<10)
	m, events, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("empty trace")
	}
	if m.Counter("io.read.calls") != stats.ReadCalls ||
		m.Counter("io.write.calls") != stats.WriteCalls ||
		m.Counter("io.seek.pages") != stats.SeekDistance {
		t.Fatalf("summary registry disagrees with run stats %+v", stats)
	}
}

func TestSummaryAndDiff(t *testing.T) {
	dir := t.TempDir()
	a, _ := writeTrace(t, dir, "a.jsonl", 50<<10)
	b, _ := writeTrace(t, dir, "b.jsonl", 200<<10)

	out := captureStdout(t, func() {
		if err := summary([]string{a}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"events", "io.write.calls", "op.append.count"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}

	out = captureStdout(t, func() {
		if err := summary([]string{"-csv", a}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.HasPrefix(out, []byte("type,name,bucket,value\n")) {
		t.Errorf("csv summary missing header:\n%s", out)
	}

	out = captureStdout(t, func() {
		if err := diff([]string{a, b}); err != nil {
			t.Error(err)
		}
	})
	// The larger build writes more pages, so the counter must show up.
	if !bytes.Contains(out, []byte("io.write.pages")) {
		t.Errorf("diff output missing changed counter:\n%s", out)
	}

	out = captureStdout(t, func() {
		if err := diff([]string{a, a}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(out, []byte("no counter differences")) {
		t.Errorf("self-diff reported changes:\n%s", out)
	}

	if err := summary([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("summary of missing file did not error")
	}
	if err := diff([]string{a}); err == nil {
		t.Error("diff with one file did not error")
	}
}

func TestUnionMerges(t *testing.T) {
	got := union([]string{"a", "c", "d"}, []string{"b", "c", "e"})
	want := []string{"a", "b", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
	if out := union(nil, nil); len(out) != 0 {
		t.Fatalf("union(nil,nil) = %v", out)
	}
}

// captureStdout redirects os.Stdout around fn. The summary/diff helpers
// print straight to stdout like the command does.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	fn()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done
}
