package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lobstore"
	"lobstore/internal/obs"
)

// writeTrace runs a small workload with tracing enabled and returns the
// trace file path plus the stats the run accumulated.
func writeTrace(t *testing.T, dir, name string, appendBytes int) (string, lobstore.Stats) {
	t.Helper()
	cfg := lobstore.DefaultConfig()
	cfg.LeafAreaPages = 1 << 14
	cfg.MetaAreaPages = 1 << 12
	cfg.MaxSegmentPages = 512
	db, err := lobstore.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	db.EnableTrace(f)
	base := db.Stats()
	obj, err := db.NewEOS(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Append(make([]byte, appendBytes)); err != nil {
		t.Fatal(err)
	}
	if err := obj.Insert(100, make([]byte, 10<<10)); err != nil {
		t.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, db.Stats().Sub(base)
}

func TestLoadAgreesWithStats(t *testing.T) {
	dir := t.TempDir()
	path, stats := writeTrace(t, dir, "a.jsonl", 100<<10)
	m, events, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("empty trace")
	}
	if m.Counter("io.read.calls") != stats.ReadCalls ||
		m.Counter("io.write.calls") != stats.WriteCalls ||
		m.Counter("io.seek.pages") != stats.SeekDistance {
		t.Fatalf("summary registry disagrees with run stats %+v", stats)
	}
}

func TestSummaryAndDiff(t *testing.T) {
	dir := t.TempDir()
	a, _ := writeTrace(t, dir, "a.jsonl", 50<<10)
	b, _ := writeTrace(t, dir, "b.jsonl", 200<<10)

	out := captureStdout(t, func() {
		if err := summary([]string{a}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"events", "io.write.calls", "op.append.count"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}

	out = captureStdout(t, func() {
		if err := summary([]string{"-csv", a}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.HasPrefix(out, []byte("type,name,bucket,value\n")) {
		t.Errorf("csv summary missing header:\n%s", out)
	}

	out = captureStdout(t, func() {
		if err := diff([]string{a, b}); err != nil {
			t.Error(err)
		}
	})
	// The larger build writes more pages, so the counter must show up.
	if !bytes.Contains(out, []byte("io.write.pages")) {
		t.Errorf("diff output missing changed counter:\n%s", out)
	}

	out = captureStdout(t, func() {
		if err := diff([]string{a, a}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(out, []byte("no counter differences")) {
		t.Errorf("self-diff reported changes:\n%s", out)
	}

	if err := summary([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("summary of missing file did not error")
	}
	if err := diff([]string{a}); err == nil {
		t.Error("diff with one file did not error")
	}
}

// writeSyntheticTrace serializes the given events as a JSONL trace file.
func writeSyntheticTrace(t *testing.T, dir, name string, events []obs.Event) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := obs.NewJSONL(f)
	for _, e := range events {
		j.Record(e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffHandlesOneSidedOpLatency pins the fix for lazily-created latency
// histograms: an op recorded in only one trace must still produce a row,
// with "-" standing in for the absent side, instead of being skipped.
func TestDiffHandlesOneSidedOpLatency(t *testing.T) {
	dir := t.TempDir()
	a := writeSyntheticTrace(t, dir, "a.jsonl", []obs.Event{
		{Time: 10, Kind: obs.KindSpanEnd, Op: obs.OpRead, Aux1: 1500},
	})
	b := writeSyntheticTrace(t, dir, "b.jsonl", []obs.Event{
		{Time: 10, Kind: obs.KindSpanEnd, Op: obs.OpRead, Aux1: 2500},
		{Time: 20, Kind: obs.KindSpanEnd, Op: obs.OpDestroy, Aux1: 900},
	})
	out := captureStdout(t, func() {
		if err := diff([]string{a, b}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(out, []byte("op.read.latency")) {
		t.Errorf("diff missing two-sided latency row:\n%s", out)
	}
	if !bytes.Contains(out, []byte("op.destroy.latency")) {
		t.Errorf("diff missing one-sided latency row:\n%s", out)
	}
	if !bytes.Contains(out, []byte("mean - -> 900.0")) {
		t.Errorf("diff did not render absent side as '-':\n%s", out)
	}
	// Reversed order: the absent histogram is on the b side.
	out = captureStdout(t, func() {
		if err := diff([]string{b, a}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(out, []byte("mean 900.0 -> -")) {
		t.Errorf("reversed diff did not render absent side as '-':\n%s", out)
	}
}

func TestTimelineSingleTrace(t *testing.T) {
	dir := t.TempDir()
	// Three spans across two 1ms windows, with an idle window between them.
	path := writeSyntheticTrace(t, dir, "tl.jsonl", []obs.Event{
		{Time: 100, Kind: obs.KindSpanEnd, Op: obs.OpRead, Aux1: 1500},
		{Time: 900, Kind: obs.KindSpanEnd, Op: obs.OpRead, Aux1: 2500},
		{Time: 2500, Kind: obs.KindSpanEnd, Op: obs.OpInsert, Aux1: 400},
	})
	out := captureStdout(t, func() {
		if err := timeline([]string{"-window", "1ms", path}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(out, []byte("2 windows")) {
		t.Errorf("timeline did not seal two windows:\n%s", out)
	}
	// Window 0 holds the two read spans; its p50 is the smaller one.
	if !bytes.Contains(out, []byte("1500")) || !bytes.Contains(out, []byte("400")) {
		t.Errorf("timeline missing per-window percentiles:\n%s", out)
	}
	if err := timeline([]string{}); err == nil {
		t.Error("timeline with no files did not error")
	}
	if err := timeline([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("timeline of missing file did not error")
	}
}

func TestTimelineDiffAlignsWindows(t *testing.T) {
	dir := t.TempDir()
	a := writeSyntheticTrace(t, dir, "a.jsonl", []obs.Event{
		{Time: 100, Kind: obs.KindSpanEnd, Op: obs.OpRead, Aux1: 1000},
		{Time: 2100, Kind: obs.KindSpanEnd, Op: obs.OpRead, Aux1: 3000},
	})
	// b is active only in window 0: windows 2 of the diff must be one-sided.
	b := writeSyntheticTrace(t, dir, "b.jsonl", []obs.Event{
		{Time: 200, Kind: obs.KindSpanEnd, Op: obs.OpRead, Aux1: 2000},
	})
	out := captureStdout(t, func() {
		if err := timeline([]string{"-window", "1ms", a, b}); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Contains(out, []byte("1000")) || !bytes.Contains(out, []byte("2000")) {
		t.Errorf("timeline diff missing aligned window 0:\n%s", out)
	}
	if !bytes.Contains(out, []byte("3000")) || !bytes.Contains(out, []byte("-")) {
		t.Errorf("timeline diff missing one-sided window 2:\n%s", out)
	}
}

func TestAlignWindows(t *testing.T) {
	a := []obs.WindowStats{{Index: 0}, {Index: 2}, {Index: 3}}
	b := []obs.WindowStats{{Index: 1}, {Index: 2}}
	pairs := alignWindows(a, b)
	wantIdx := []int64{0, 1, 2, 3}
	if len(pairs) != len(wantIdx) {
		t.Fatalf("got %d pairs, want %d", len(pairs), len(wantIdx))
	}
	for i, p := range pairs {
		if windowIndex(p[0], p[1]) != wantIdx[i] {
			t.Fatalf("pair %d has index %d, want %d", i, windowIndex(p[0], p[1]), wantIdx[i])
		}
	}
	if pairs[0][1] != nil || pairs[1][0] != nil || pairs[3][1] != nil {
		t.Fatal("one-sided windows not nil on the absent side")
	}
	if pairs[2][0] == nil || pairs[2][1] == nil {
		t.Fatal("shared window 2 not paired")
	}
}

func TestUnionMerges(t *testing.T) {
	got := union([]string{"a", "c", "d"}, []string{"b", "c", "e"})
	want := []string{"a", "b", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
	if out := union(nil, nil); len(out) != 0 {
		t.Fatalf("union(nil,nil) = %v", out)
	}
}

// captureStdout redirects os.Stdout around fn. The summary/diff helpers
// print straight to stdout like the command does.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	fn()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done
}
