// Command lobserve serves a large-object database over TCP, speaking the
// internal/wire length-prefixed binary protocol. It opens the store
// through the concurrency engine (Config.Concurrent), so many
// connections share one database with per-object FIFO ordering and
// snapshot reads, and commits from independent connections coalesce into
// the file backend's group-commit batches.
//
//	$ lobserve -addr :7431 -backend file -dir /data/lob -group-commit 16 -group-delay 2ms
//
// The server logs "listening on ADDR" to stderr once ready (use -addr
// with port 0 to pick a free port), and shuts down cleanly on SIGINT or
// SIGTERM, printing request counts and service-time percentiles.
//
// Flags:
//
//	-addr            TCP listen address (default 127.0.0.1:7431)
//	-backend         mem or file (default mem)
//	-dir             file-backend directory
//	-sync            file-backend fsync policy: always, commit, never
//	-group-commit    max barriers per device flush (0 = off)
//	-group-delay     max wait for a group-commit batch to fill
//	-async-writeback move pwrites onto a background writer
//	-coalesce        elevator write coalescing + sequential read-ahead
//	-buffer-pages    buffer pool size in pages (0 = concurrent minimum)
//	-workers         executor goroutines per connection (0 = default 4)
//	-chunk           streaming-read frame payload bytes (0 = 64KiB)
//
// lobload is the matching load generator.
package main

import (
	"os"

	"lobstore/internal/server"
)

func main() {
	os.Exit(server.RunServe("lobserve", os.Args[1:], os.Stderr))
}
