// Command lobctl drives a large object interactively through the public
// API, printing the simulated I/O cost of every operation. It reads one
// command per line from stdin (or from -c), making it easy to explore how
// the three storage structures respond to the same operation sequence:
//
//	$ lobctl -engine esm -leaf 4 <<'EOF'
//	append 1M
//	insert 5000 64K
//	read 0 10K
//	stat
//	EOF
//
// Commands:
//
//	append N          append N fresh bytes
//	insert OFF N      insert N bytes before offset OFF
//	delete OFF N      delete N bytes at OFF
//	replace OFF N     overwrite N bytes at OFF
//	read OFF N        read N bytes at OFF
//	scan CHUNK        sequential scan in CHUNK-byte pieces
//	stat              object and database statistics
//	close             finalize (trim) the object
//	destroy           free all object space
//	help              this list
//
// Sizes accept K/M suffixes.
//
// By default the object lives in a fresh in-memory simulated database and
// vanishes on exit. With -backend file -dir PATH the database is durable:
// the object (named "lobctl") is created on first use and reopened — after
// crash-consistent recovery — on later runs. -sync selects the fsync
// policy (always, commit, never).
//
// The read-only subcommand
//
//	lobctl fsck -dir PATH
//
// cross-checks a durable database's on-disk allocation directories against
// the set of pages reachable from its catalog, reporting leaked
// (allocated-but-unowned) and doubly-owned pages.
//
// The subcommand
//
//	lobctl serve -addr HOST:PORT [flags]
//
// serves the database over TCP, speaking the internal/wire protocol; it
// is the same server as the standalone lobserve command (see that
// command for the flag list).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lobstore"
	"lobstore/internal/server"
	"lobstore/internal/workload"
)

func main() {
	// Subcommands come first on the command line, before any flags.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(server.RunServe("lobctl serve", os.Args[2:], os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		fs := flag.NewFlagSet("fsck", flag.ExitOnError)
		dir := fs.String("dir", "", "directory of the file-backed database")
		if err := fs.Parse(os.Args[2:]); err != nil {
			fatalf("fsck: %v", err)
		}
		runFsck(*dir)
		return
	}
	var (
		engine    = flag.String("engine", "eos", "storage structure: esm, starburst or eos")
		leaf      = flag.Int("leaf", 4, "ESM leaf size in pages")
		threshold = flag.Int("threshold", 16, "EOS segment size threshold in pages")
		maxSeg    = flag.Int("maxseg", 0, "Starburst max segment pages (0 = allocator max)")
		script    = flag.String("c", "", "semicolon-separated commands instead of stdin")
		trace     = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics   = flag.Bool("metrics", false, "print a metrics report to stderr on exit")
		backend   = flag.String("backend", "mem", "byte-storage backend: mem or file")
		dir       = flag.String("dir", "", "directory of the file-backed database (backend file)")
		sync      = flag.String("sync", "commit", "file-backend fsync policy: always, commit or never")
		coalesce  = flag.Bool("coalesce", false, "enable elevator write coalescing and sequential read-ahead")
		groupMax  = flag.Int("group-commit", 0, "file-backend group commit: max barriers per device flush (0 = off)")
		groupWait = flag.Duration("group-delay", 0, "file-backend group commit: max wait for a batch to fill")
		asyncWB   = flag.Bool("async-writeback", false, "file-backend: move pwrites onto a background writer")
		conc      = flag.Bool("concurrent", false, "open the database through the concurrency engine (thread-safe handles, snapshot reads)")
		bufPages  = flag.Int("buffer-pages", 0, "buffer pool size in pages (0 = paper default; -concurrent needs a larger pool and picks one)")
	)
	flag.Parse()

	cfg := lobstore.DefaultConfig()
	cfg.Backend, cfg.Dir, cfg.SyncPolicy = *backend, *dir, *sync
	cfg.Coalesce = *coalesce
	cfg.GroupCommit = lobstore.GroupCommit{MaxBatch: *groupMax, MaxDelay: *groupWait}
	cfg.AsyncWriteback = *asyncWB
	cfg.Concurrent = *conc
	switch {
	case *bufPages > 0:
		// An explicit pool size is the user's to get wrong: a
		// starvation-prone choice under -concurrent is rejected by Open
		// below with a configuration error, not silently padded.
		cfg.BufferPages = *bufPages
	case *conc:
		cfg.BufferPages = lobstore.MinConcurrentBufferPages
	}
	db, err := lobstore.Open(cfg)
	if err != nil {
		if errors.Is(err, lobstore.ErrConfig) {
			fatalf("configuration: %v", err)
		}
		fatalf("open: %v", err)
	}
	var traceFile *os.File
	if *trace != "" {
		traceFile, err = os.Create(*trace)
		if err != nil {
			fatalf("creating trace: %v", err)
		}
		db.EnableTrace(traceFile)
	}
	if *metrics {
		db.EnableMetrics(nil)
	}
	var obj lobstore.Object
	if *backend == "file" {
		// Durable databases keep the object across runs: reattach when a
		// previous session already created it.
		obj, err = openOrCreate(db, *engine, *leaf, *threshold, *maxSeg)
	} else {
		switch *engine {
		case "esm":
			obj, err = db.NewESM(*leaf)
		case "starburst":
			obj, err = db.NewStarburst(*maxSeg)
		case "eos":
			obj, err = db.NewEOS(*threshold)
		default:
			fatalf("unknown engine %q (esm, starburst, eos)", *engine)
		}
	}
	if err != nil {
		fatalf("create object: %v", err)
	}

	var in io.Reader = os.Stdin
	if *script != "" {
		in = strings.NewReader(strings.ReplaceAll(*script, ";", "\n"))
	}
	if err := run(db, obj, in, os.Stdout); err != nil {
		fatalf("%v", err)
	}
	if traceFile != nil {
		if err := db.FlushTrace(); err != nil {
			fatalf("flushing trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("closing trace: %v", err)
		}
	}
	if m := db.Metrics(); m != nil {
		if err := m.WriteText(os.Stderr); err != nil {
			fatalf("writing metrics: %v", err)
		}
	}
	if *backend == "file" {
		// Trim growth-pattern slack (Starburst, EOS) so the saved image is
		// exact and an offline fsck comes back clean without a reopen. A
		// destroyed object has nothing left to trim; don't fail the exit.
		if err := obj.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "lobctl: close object: %v\n", err)
		}
		if err := db.Close(); err != nil {
			fatalf("close: %v", err)
		}
	}
}

// objectName is the fixed catalog name of lobctl's object in a durable
// database.
const objectName = "lobctl"

// openOrCreate reattaches to the named object of a durable database, or
// creates it on first use with the engine flags.
func openOrCreate(db *lobstore.DB, engine string, leaf, threshold, maxSeg int) (lobstore.Object, error) {
	if obj, err := db.OpenObject(objectName); err == nil {
		return obj, nil
	}
	return db.Create(objectName, lobstore.ObjectSpec{
		Engine:          engine,
		LeafPages:       leaf,
		Threshold:       threshold,
		MaxSegmentPages: maxSeg,
	})
}

// runFsck checks a durable database directory read-only and reports
// leaked and doubly-owned pages. Exit status 1 signals an unclean store.
func runFsck(dir string) {
	if dir == "" {
		fatalf("fsck needs -dir")
	}
	rep, err := lobstore.Fsck(dir)
	if err != nil {
		fatalf("fsck: %v", err)
	}
	fmt.Printf("fsck %s: %d object(s), %d reachable page(s), %d allocated page(s)\n",
		dir, rep.Objects, rep.ReachablePages, rep.AllocatedPages)
	for _, r := range rep.Leaked {
		fmt.Printf("  leaked: %v\n", r)
	}
	for _, c := range rep.DoublyOwned {
		fmt.Printf("  doubly-owned: %v\n", c)
	}
	if !rep.Clean() {
		fmt.Printf("fsck %s: UNCLEAN — %d leaked range(s), %d ownership conflict(s)\n",
			dir, len(rep.Leaked), len(rep.DoublyOwned))
		os.Exit(1)
	}
	fmt.Printf("fsck %s: clean\n", dir)
}

func run(db *lobstore.DB, obj lobstore.Object, in io.Reader, out io.Writer) error {
	var filler workload.Filler
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		stats, err := db.Measure(func() error {
			return apply(db, obj, &filler, out, cmd, args)
		})
		if err != nil {
			return fmt.Errorf("%s: %w", line, err)
		}
		fmt.Fprintf(out, "%-30s  ios=%-4d pages=%-6d cost=%v\n",
			line, stats.Calls(), stats.Pages(), stats.Time)
	}
	return sc.Err()
}

func apply(db *lobstore.DB, obj lobstore.Object, filler *workload.Filler, out io.Writer, cmd string, args []string) error {
	size := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("missing argument %d", i+1)
		}
		return parseSize(args[i])
	}
	switch cmd {
	case "append":
		n, err := size(0)
		if err != nil {
			return err
		}
		return obj.Append(filler.Bytes(int(n)))
	case "insert":
		off, err := size(0)
		if err != nil {
			return err
		}
		n, err := size(1)
		if err != nil {
			return err
		}
		return obj.Insert(off, filler.Bytes(int(n)))
	case "delete":
		off, err := size(0)
		if err != nil {
			return err
		}
		n, err := size(1)
		if err != nil {
			return err
		}
		return obj.Delete(off, n)
	case "replace":
		off, err := size(0)
		if err != nil {
			return err
		}
		n, err := size(1)
		if err != nil {
			return err
		}
		return obj.Replace(off, filler.Bytes(int(n)))
	case "read":
		off, err := size(0)
		if err != nil {
			return err
		}
		n, err := size(1)
		if err != nil {
			return err
		}
		buf := make([]byte, n)
		if err := obj.Read(off, buf); err != nil {
			return err
		}
		preview := buf
		if len(preview) > 16 {
			preview = preview[:16]
		}
		fmt.Fprintf(out, "  data[%d:+%d] = % x…\n", off, n, preview)
		return nil
	case "scan":
		chunk, err := size(0)
		if err != nil {
			return err
		}
		return workload.Scan(obj, int(chunk))
	case "stat":
		u := obj.Utilization()
		fmt.Fprintf(out, "  size=%d bytes, utilization=%v\n", obj.Size(), u)
		st := db.Stats()
		frag := db.LeafFragmentation()
		fmt.Fprintf(out, "  ios=%d pages=%d seek=%d pages, %v\n",
			st.Calls(), st.Pages(), st.SeekDistance, frag)
		return nil
	case "dump":
		l, err := lobstore.Inspect(obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %d segment(s), %d index page(s), %d index level(s)\n",
			len(l.Segments), l.IndexPages, l.IndexLevels)
		for i, s := range l.Segments {
			if i >= 20 {
				fmt.Fprintf(out, "  … %d more\n", len(l.Segments)-i)
				break
			}
			fmt.Fprintf(out, "  seg %3d: page %-6d x%-4d %8d bytes\n", i, s.StartPage, s.Pages, s.Bytes)
		}
		return nil
	case "close":
		return obj.Close()
	case "destroy":
		return obj.Destroy()
	case "help":
		fmt.Fprintln(out, "  commands: append insert delete replace read scan stat dump close destroy help")
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size")
	}
	return n * mult, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lobctl: "+format+"\n", args...)
	os.Exit(1)
}
