package main

import (
	"strings"
	"testing"

	"lobstore"
)

func testDB(t *testing.T) (*lobstore.DB, lobstore.Object) {
	t.Helper()
	cfg := lobstore.DefaultConfig()
	cfg.LeafAreaPages = 1 << 14
	cfg.MetaAreaPages = 1 << 12
	cfg.MaxSegmentPages = 512
	db, err := lobstore.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db.NewEOS(4)
	if err != nil {
		t.Fatal(err)
	}
	return db, obj
}

func TestRunScript(t *testing.T) {
	db, obj := testDB(t)
	script := strings.Join([]string{
		"# a comment",
		"",
		"append 100K",
		"insert 5000 4K",
		"read 0 64",
		"replace 10 32",
		"delete 100 2K",
		"scan 8K",
		"stat",
		"help",
		"close",
		"destroy",
	}, "\n")
	var out strings.Builder
	if err := run(db, obj, strings.NewReader(script), &out); err != nil {
		t.Fatalf("script failed: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"append 100K", "ios=", "cost=", "size=", "data[0:+64]"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunRejectsBadCommands(t *testing.T) {
	for _, script := range []string{
		"frobnicate 1",
		"append",
		"insert 10",
		"read 0 -5",
		"append 10X",
	} {
		db, obj := testDB(t)
		var out strings.Builder
		if err := run(db, obj, strings.NewReader(script), &out); err == nil {
			t.Errorf("script %q succeeded", script)
		}
	}
}

func TestRunSurfacesObjectErrors(t *testing.T) {
	db, obj := testDB(t)
	var out strings.Builder
	if err := run(db, obj, strings.NewReader("read 100 10"), &out); err == nil {
		t.Error("read past end of empty object succeeded")
	}
}

// TestFileBackendSessions drives two lobctl-style sessions against one
// durable directory: the second run must reattach to the object the first
// created, with its bytes intact.
func TestFileBackendSessions(t *testing.T) {
	dir := t.TempDir()
	cfg := lobstore.DefaultConfig()
	cfg.LeafAreaPages = 1 << 14
	cfg.MetaAreaPages = 1 << 12
	cfg.MaxSegmentPages = 512
	cfg.Backend, cfg.Dir, cfg.SyncPolicy = "file", dir, "commit"

	session := func(script string) string {
		t.Helper()
		db, err := lobstore.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := openOrCreate(db, "eos", 4, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := run(db, obj, strings.NewReader(script), &out); err != nil {
			t.Fatalf("script failed: %v\noutput:\n%s", err, out.String())
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}

	session("append 100K\ninsert 5000 4K")
	text := session("stat\nread 0 64")
	if !strings.Contains(text, "size=106496 bytes") {
		t.Errorf("reopened object lost bytes:\n%s", text)
	}

	rep, err := lobstore.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Objects != 1 {
		t.Errorf("fsck after two sessions: objects=%d leaked=%v doubly-owned=%v",
			rep.Objects, rep.Leaked, rep.DoublyOwned)
	}
}

func TestParseSize(t *testing.T) {
	if n, err := parseSize("64K"); err != nil || n != 65536 {
		t.Errorf("parseSize(64K) = %d, %v", n, err)
	}
	if _, err := parseSize("-1"); err == nil {
		t.Error("negative size accepted")
	}
}
