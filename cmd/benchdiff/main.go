// Command benchdiff compares two benchmark reports produced by lobbench
// (-benchjson or -volbenchjson) and reports wall-clock regressions. It is
// the CI guard around the committed BENCH_harness.json and
// BENCH_volume.json baselines. The comparison is percentile-aware: besides
// phase means it gates on each experiment's p99 wall-clock operation
// latency, the number tail-latency SLOs are judged by. By default a fresh
// run that is more than -threshold slower on any comparable metric prints a
// warning per regression — in GitHub Actions ::warning:: form so it
// annotates the run — but exits 0, because shared CI runners are too noisy
// for a hard gate; -enforce turns regressions into exit code 1, and
// -enforce-p99 hard-gates only the p99 wall-clock latency metrics: tail
// percentiles average out run-to-run scheduler noise far better than the
// phase means, so with two PRs of baselines behind them they are gated in
// CI while the wall means stay warn-only.
//
// Simulated-time metrics (per-experiment and total sim_ms) are different:
// they come from the paper's deterministic cost model under a fixed seed,
// so they carry no runner noise at all. They are compared exactly, in both
// directions, with no floor; -enforce-sim makes any drift beyond
// -sim-threshold (default 0) fail the build. A deliberate cost-model
// change ships with a regenerated baseline.
//
// Usage:
//
//	benchdiff baseline.json fresh.json
//	benchdiff -threshold 0.5 -min-wall-ms 25 -min-p99-us 200 old.json new.json
//	benchdiff -enforce baseline.json fresh.json
//	benchdiff -enforce-p99 baseline.json fresh.json
//	benchdiff -enforce-sim baseline.json fresh.json
//
// The schemas are recognized by their fields: harness reports contribute
// prepass/experiment wall milliseconds, per-experiment p99 µs and
// micro-benchmark ns/op, volume reports contribute per-case ns/op, and
// server reports (BENCH_server.json, written by lobload) contribute
// per-case ops/s, p99 µs and goodput. Throughput metrics (suffix "ops/s")
// regress downward — a fresh rate more than -threshold below baseline is
// flagged — while every latency metric regresses upward; server p99 µs
// metrics share the -enforce-p99 hard gate with the harness ones. Metrics
// below -min-wall-ms (or the ns/op equivalent) in the baseline are skipped,
// as are p99 metrics below -min-p99-us: relative comparison of sub-noise
// cells produces only false alarms.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// phase and micro mirror lobbench's benchjson schema; volCase mirrors the
// volbenchjson one. A report may hold any mix: absent sections decode
// empty.
type phase struct {
	Name        string  `json:"name"`
	WallMs      float64 `json:"wall_ms"`
	SimMs       float64 `json:"sim_ms"`
	OpWallP99Us float64 `json:"op_wall_p99_us"`
}

type micro struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

type volCase struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// serverCase mirrors one named lobload run in a BENCH_server.json
// artifact: end-to-end network serving throughput and wall-clock tail
// latency, plus goodput when the run carried an SLO.
type serverCase struct {
	Name             string  `json:"name"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	P99Us            float64 `json:"p99_us"`
	GoodputOpsPerSec float64 `json:"goodput_ops_per_sec"`
}

type report struct {
	Prepass     *phase       `json:"prepass"`
	Experiments []phase      `json:"experiments"`
	Micro       []micro      `json:"micro"`
	TotalSimMs  float64      `json:"total_sim_ms"`
	TotalWallMs float64      `json:"total_wall_ms"`
	Cases       []volCase    `json:"cases"`
	ServerCases []serverCase `json:"server_cases"`
}

// metrics flattens a report into named wall-clock numbers, all in
// milliseconds-equivalent units per metric family (the two sides of a diff
// always carry the same unit, so only the ratio matters).
func metrics(r *report) map[string]float64 {
	out := map[string]float64{}
	if r.Prepass != nil {
		out["prepass wall_ms"] = r.Prepass.WallMs
	}
	for _, p := range r.Experiments {
		out["experiment "+p.Name+" wall_ms"] = p.WallMs
		if p.SimMs > 0 {
			out["experiment "+p.Name+" sim_ms"] = p.SimMs
		}
		if p.OpWallP99Us > 0 {
			out["experiment "+p.Name+" p99_us"] = p.OpWallP99Us
		}
	}
	if r.TotalWallMs > 0 {
		out["total wall_ms"] = r.TotalWallMs
	}
	if r.TotalSimMs > 0 {
		out["total sim_ms"] = r.TotalSimMs
	}
	for _, m := range r.Micro {
		out["micro "+m.Name+" ns/op"] = m.NsPerOp
	}
	for _, c := range r.Cases {
		out["case "+c.Name+" ns/op"] = c.NsPerOp
	}
	for _, c := range r.ServerCases {
		if c.OpsPerSec > 0 {
			out["server "+c.Name+" ops/s"] = c.OpsPerSec
		}
		if c.P99Us > 0 {
			out["server "+c.Name+" p99_us"] = c.P99Us
		}
		if c.GoodputOpsPerSec > 0 {
			out["server "+c.Name+" goodput ops/s"] = c.GoodputOpsPerSec
		}
	}
	return out
}

// regression is one metric whose fresh value exceeds the threshold.
type regression struct {
	name       string
	base, cur  float64
	ratio      float64
	isWallFine bool // below the noise floor: reported but not warned
}

// compare returns the regressions of cur against base. Metrics missing on
// either side are ignored (experiments come and go); baseline values under
// floorMs (for wall metrics) or floorMs*1e6 ns (for ns/op metrics) are
// skipped as noise, and p99 latency metrics — µs-scale, far below any
// sensible wall floor — use their own floorUs.
func compare(base, cur map[string]float64, threshold, floorMs, floorUs float64) []regression {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	var regs []regression
	for _, n := range names {
		b, c := base[n], cur[n]
		if _, ok := cur[n]; !ok || b <= 0 {
			continue
		}
		if isSimMetric(n) {
			continue // simulated time is gated exactly, by compareSim
		}
		if isOpsMetric(n) {
			// Throughput regresses downward: flag when the fresh rate falls
			// more than threshold below baseline. No floor — a server case
			// measured at all is above noise, and a collapse to near zero is
			// exactly the regression to catch. ratio > 1 means "times worse"
			// in both families.
			if c < b*(1-threshold) {
				regs = append(regs, regression{name: n, base: b, cur: c, ratio: b / c})
			}
			continue
		}
		floor := floorMs
		switch {
		case isNsMetric(n):
			floor = floorMs * 1e6 // same wall time expressed in ns
		case isUsMetric(n):
			floor = floorUs
		}
		if b < floor {
			continue
		}
		if c > b*(1+threshold) {
			regs = append(regs, regression{name: n, base: b, cur: c, ratio: c / b})
		}
	}
	return regs
}

// compareSim diffs the simulated-time metrics. Simulated milliseconds come
// from the paper's deterministic cost model under a fixed seed: any drift —
// faster or slower, however small — means the engine's I/O behavior
// changed, so there is no noise floor and the default tolerance is zero.
// A deliberate cost change is shipped by regenerating the baseline.
func compareSim(base, cur map[string]float64, tolerance float64) []regression {
	names := make([]string, 0, len(base))
	for n := range base {
		if isSimMetric(n) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var regs []regression
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok || b <= 0 {
			continue
		}
		drift := (c - b) / b
		if drift < 0 {
			drift = -drift
		}
		if drift > tolerance {
			regs = append(regs, regression{name: n, base: b, cur: c, ratio: c / b})
		}
	}
	return regs
}

func isSimMetric(name string) bool {
	return len(name) > 6 && name[len(name)-6:] == "sim_ms"
}

func isNsMetric(name string) bool {
	return len(name) > 5 && name[len(name)-5:] == "ns/op"
}

func isUsMetric(name string) bool {
	return len(name) > 6 && name[len(name)-6:] == "p99_us"
}

// isOpsMetric marks throughput metrics (server ops/s and goodput), which
// regress downward rather than upward.
func isOpsMetric(name string) bool {
	return len(name) > 5 && name[len(name)-5:] == "ops/s"
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := metrics(&r)
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no comparable metrics (neither harness nor volume schema?)", path)
	}
	return m, nil
}

func main() {
	var (
		threshold  = flag.Float64("threshold", 0.20, "relative slowdown that counts as a regression")
		floorMs    = flag.Float64("min-wall-ms", 10, "skip metrics whose baseline is below this wall time in ms (ns/op metrics use the equivalent)")
		floorUs    = flag.Float64("min-p99-us", 100, "skip p99 latency metrics whose baseline is below this many µs")
		github     = flag.Bool("github", false, "emit GitHub Actions ::warning:: annotations")
		enforce    = flag.Bool("enforce", false, "exit 1 when any wall-clock regression is found (default: warn only)")
		enforceP99 = flag.Bool("enforce-p99", false, "exit 1 when a p99 wall-clock latency metric regresses (wall means stay warn-only)")
		simTol     = flag.Float64("sim-threshold", 0, "relative drift tolerated on deterministic sim_ms metrics")
		enforceSim = flag.Bool("enforce-sim", false, "exit 1 when any sim_ms metric drifts beyond -sim-threshold")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold R] [-min-wall-ms MS] [-min-p99-us US] [-sim-threshold R] [-github] [-enforce] [-enforce-p99] [-enforce-sim] baseline.json fresh.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	simRegs := compareSim(base, cur, *simTol)
	for _, r := range simRegs {
		msg := fmt.Sprintf("%s drifted %.4fx: %.6g -> %.6g (deterministic metric: the I/O cost model behavior changed)",
			r.name, r.ratio, r.base, r.cur)
		switch {
		case *github && *enforceSim:
			fmt.Printf("::error title=sim drift::%s\n", msg)
		case *github:
			fmt.Printf("::warning title=sim drift::%s\n", msg)
		default:
			fmt.Printf("benchdiff: SIM DRIFT %s\n", msg)
		}
	}
	regs := compare(base, cur, *threshold, *floorMs, *floorUs)
	if len(regs) == 0 && len(simRegs) == 0 {
		fmt.Printf("benchdiff: no regressions beyond %.0f%% (%d metrics compared)\n",
			*threshold*100, len(base))
		return
	}
	p99Regs := 0
	for _, r := range regs {
		msg := fmt.Sprintf("%s regressed %.1fx: %.3g -> %.3g", r.name, r.ratio, r.base, r.cur)
		hard := *enforce || (*enforceP99 && isUsMetric(r.name))
		if hard && isUsMetric(r.name) {
			p99Regs++
		}
		switch {
		case *github && hard:
			fmt.Printf("::error title=bench regression::%s\n", msg)
		case *github:
			fmt.Printf("::warning title=bench regression::%s\n", msg)
		default:
			fmt.Printf("benchdiff: WARNING %s\n", msg)
		}
	}
	// Wall-clock gating is fail-soft by default: annotate, never break the
	// build on shared-runner timing noise; -enforce flips that for callers
	// with quiet machines, and -enforce-p99 hard-gates only the tail
	// percentiles. Simulated time carries no noise, so -enforce-sim turns
	// any drift into a hard failure independently.
	if *enforceSim && len(simRegs) > 0 {
		os.Exit(1)
	}
	if *enforce && len(regs) > 0 {
		os.Exit(1)
	}
	if *enforceP99 && p99Regs > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
