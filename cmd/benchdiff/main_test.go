package main

import "testing"

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	base := map[string]float64{
		"experiment fig5 wall_ms":  100,
		"experiment fig7 wall_ms":  200,
		"experiment tiny wall_ms":  0.5, // below the noise floor
		"micro append ns/op":       5e7, // 50 ms-equivalent
		"micro mix ns/op":          1e6, // 1 ms-equivalent: below floor
		"case file-seq-read ns/op": 2e7, // 20 ms-equivalent
		"gone wall_ms":             50,  // absent from cur
	}
	cur := map[string]float64{
		"experiment fig5 wall_ms":  180, // +80%: regression
		"experiment fig7 wall_ms":  210, // +5%: fine
		"experiment tiny wall_ms":  50,  // huge ratio but noise-floored
		"micro append ns/op":       9e7, // +80%: regression
		"micro mix ns/op":          9e6, // floored
		"case file-seq-read ns/op": 2e7,
		"new wall_ms":              999, // absent from base
	}
	regs := compare(base, cur, 0.20, 10)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(regs), regs)
	}
	if regs[0].name != "experiment fig5 wall_ms" || regs[1].name != "micro append ns/op" {
		t.Fatalf("wrong regressions: %v", regs)
	}
	if regs[0].ratio < 1.79 || regs[0].ratio > 1.81 {
		t.Fatalf("fig5 ratio %.2f, want 1.80", regs[0].ratio)
	}
}

func TestMetricsFlattensBothSchemas(t *testing.T) {
	r := &report{
		Prepass:     &phase{Name: "prepass", WallMs: 3},
		Experiments: []phase{{Name: "fig5", WallMs: 7}},
		Micro:       []micro{{Name: "append", NsPerOp: 11}},
		TotalWallMs: 10,
		Cases:       []volCase{{Name: "mem-seq-read", NsPerOp: 13}},
	}
	m := metrics(r)
	want := map[string]float64{
		"prepass wall_ms":         3,
		"experiment fig5 wall_ms": 7,
		"micro append ns/op":      11,
		"total wall_ms":           10,
		"case mem-seq-read ns/op": 13,
	}
	if len(m) != len(want) {
		t.Fatalf("got %d metrics %v, want %d", len(m), m, len(want))
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("metric %q = %v, want %v", k, m[k], v)
		}
	}
}
