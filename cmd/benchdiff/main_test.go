package main

import "testing"

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	base := map[string]float64{
		"experiment fig5 wall_ms":  100,
		"experiment fig7 wall_ms":  200,
		"experiment tiny wall_ms":  0.5, // below the noise floor
		"micro append ns/op":       5e7, // 50 ms-equivalent
		"micro mix ns/op":          1e6, // 1 ms-equivalent: below floor
		"case file-seq-read ns/op": 2e7, // 20 ms-equivalent
		"gone wall_ms":             50,  // absent from cur
	}
	cur := map[string]float64{
		"experiment fig5 wall_ms":  180, // +80%: regression
		"experiment fig7 wall_ms":  210, // +5%: fine
		"experiment tiny wall_ms":  50,  // huge ratio but noise-floored
		"micro append ns/op":       9e7, // +80%: regression
		"micro mix ns/op":          9e6, // floored
		"case file-seq-read ns/op": 2e7,
		"new wall_ms":              999, // absent from base
	}
	regs := compare(base, cur, 0.20, 10, 100)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(regs), regs)
	}
	if regs[0].name != "experiment fig5 wall_ms" || regs[1].name != "micro append ns/op" {
		t.Fatalf("wrong regressions: %v", regs)
	}
	if regs[0].ratio < 1.79 || regs[0].ratio > 1.81 {
		t.Fatalf("fig5 ratio %.2f, want 1.80", regs[0].ratio)
	}
}

// TestCompareGatesOnP99 pins the percentile-aware gate: a p99 wall-clock
// regression is flagged even when the phase mean barely moves, and p99
// metrics use their own µs noise floor instead of the ms wall floor.
func TestCompareGatesOnP99(t *testing.T) {
	base := map[string]float64{
		"experiment fig7 wall_ms": 200,
		"experiment fig7 p99_us":  500,
		"experiment fig9 p99_us":  400,
		"experiment tiny p99_us":  50, // below the 100 µs p99 floor
	}
	cur := map[string]float64{
		"experiment fig7 wall_ms": 205,  // +2.5%: mean looks fine…
		"experiment fig7 p99_us":  2000, // …but the tail blew up 4x
		"experiment fig9 p99_us":  440,  // +10%: under threshold
		"experiment tiny p99_us":  5000, // huge ratio but sub-noise baseline
	}
	regs := compare(base, cur, 0.20, 10, 100)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want 1", len(regs), regs)
	}
	if regs[0].name != "experiment fig7 p99_us" || regs[0].ratio != 4 {
		t.Fatalf("wrong regression: %+v", regs[0])
	}
	// The µs floor must not inherit the wall-ms floor: with floorUs = 10 the
	// tiny experiment's 100x jump becomes a real finding.
	regs = compare(base, cur, 0.20, 10, 10)
	if len(regs) != 2 {
		t.Fatalf("lowered p99 floor: got %d regressions %v, want 2", len(regs), regs)
	}
}

// TestCompareThresholdBoundary pins the exact gate: a regression requires
// strictly more than base*(1+threshold).
func TestCompareThresholdBoundary(t *testing.T) {
	base := map[string]float64{"experiment fig5 p99_us": 1000}
	at := map[string]float64{"experiment fig5 p99_us": 1200}
	if regs := compare(base, at, 0.20, 10, 100); len(regs) != 0 {
		t.Fatalf("exactly-at-threshold flagged: %v", regs)
	}
	over := map[string]float64{"experiment fig5 p99_us": 1201}
	if regs := compare(base, over, 0.20, 10, 100); len(regs) != 1 {
		t.Fatalf("just-over-threshold missed: %v", regs)
	}
}

// TestCompareSimGatesExactly pins the deterministic gate: sim metrics are
// flagged on any drift in either direction with no noise floor, stay out
// of the wall-clock comparison, and an exact match passes.
func TestCompareSimGatesExactly(t *testing.T) {
	base := map[string]float64{
		"experiment fig5 sim_ms":  1000,
		"experiment fig7 sim_ms":  0.25, // far below any wall floor: still gated
		"total sim_ms":            5000,
		"experiment fig5 wall_ms": 100,
	}
	same := map[string]float64{
		"experiment fig5 sim_ms":  1000,
		"experiment fig7 sim_ms":  0.25,
		"total sim_ms":            5000,
		"experiment fig5 wall_ms": 500, // wall regression is not sim drift
	}
	if regs := compareSim(base, same, 0); len(regs) != 0 {
		t.Fatalf("exact match flagged: %v", regs)
	}
	if regs := compare(base, same, 0.20, 10, 100); len(regs) != 1 || regs[0].name != "experiment fig5 wall_ms" {
		t.Fatalf("wall compare mishandled sim metrics: %v", regs)
	}
	drift := map[string]float64{
		"experiment fig5 sim_ms": 1000.5, // +0.05%: slower
		"experiment fig7 sim_ms": 0.24,   // -4%: faster counts too
		"total sim_ms":           5000,
	}
	regs := compareSim(base, drift, 0)
	if len(regs) != 2 {
		t.Fatalf("got %d sim drifts %v, want 2", len(regs), regs)
	}
	if regs[0].name != "experiment fig5 sim_ms" || regs[1].name != "experiment fig7 sim_ms" {
		t.Fatalf("wrong sim drifts: %v", regs)
	}
	// A tolerance absorbs drift up to its bound, both directions.
	if regs := compareSim(base, drift, 0.05); len(regs) != 0 {
		t.Fatalf("5%% tolerance still flagged: %v", regs)
	}
}

// TestCompareThroughputRegressesDownward pins the inverted gate for ops/s
// metrics: a throughput drop beyond threshold is a regression, a rise (or
// a latency-style increase) never is, and goodput shares the family.
func TestCompareThroughputRegressesDownward(t *testing.T) {
	base := map[string]float64{
		"server closed-16 ops/s":         40000,
		"server closed-16 goodput ops/s": 39000,
		"server closed-1 ops/s":          9000,
		"server closed-16 p99_us":        800,
	}
	cur := map[string]float64{
		"server closed-16 ops/s":         30000, // -25%: regression
		"server closed-16 goodput ops/s": 50000, // faster: fine
		"server closed-1 ops/s":          8000,  // -11%: under threshold
		"server closed-16 p99_us":        1200,  // +50%: latency regression
	}
	regs := compare(base, cur, 0.20, 10, 100)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(regs), regs)
	}
	if regs[0].name != "server closed-16 ops/s" {
		t.Fatalf("wrong throughput regression: %+v", regs[0])
	}
	if regs[0].ratio < 1.32 || regs[0].ratio > 1.34 {
		t.Fatalf("throughput ratio %.2f, want ~1.33 (times worse)", regs[0].ratio)
	}
	if regs[1].name != "server closed-16 p99_us" {
		t.Fatalf("server p99 not compared as latency: %+v", regs[1])
	}
	// Boundary: exactly base*(1-threshold) is not a regression.
	at := map[string]float64{"server closed-16 ops/s": 32000}
	if regs := compare(map[string]float64{"server closed-16 ops/s": 40000}, at, 0.20, 10, 100); len(regs) != 0 {
		t.Fatalf("exactly-at-threshold throughput flagged: %v", regs)
	}
}

func TestMetricsFlattensServerSchema(t *testing.T) {
	r := &report{
		ServerCases: []serverCase{
			{Name: "closed-16", OpsPerSec: 40000, P99Us: 800, GoodputOpsPerSec: 39000},
			{Name: "open-5000", OpsPerSec: 5000, P99Us: 1500}, // no SLO: no goodput metric
		},
	}
	m := metrics(r)
	want := map[string]float64{
		"server closed-16 ops/s":         40000,
		"server closed-16 p99_us":        800,
		"server closed-16 goodput ops/s": 39000,
		"server open-5000 ops/s":         5000,
		"server open-5000 p99_us":        1500,
	}
	if len(m) != len(want) {
		t.Fatalf("got %d metrics %v, want %d", len(m), m, len(want))
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("metric %q = %v, want %v", k, m[k], v)
		}
	}
	if !isUsMetric("server closed-16 p99_us") {
		t.Fatal("server p99 metric must share the p99 gate")
	}
	if !isOpsMetric("server closed-16 goodput ops/s") || isOpsMetric("micro append ns/op") {
		t.Fatal("ops/s suffix detection wrong")
	}
}

func TestMetricsFlattensBothSchemas(t *testing.T) {
	r := &report{
		Prepass:     &phase{Name: "prepass", WallMs: 3},
		Experiments: []phase{{Name: "fig5", WallMs: 7, SimMs: 40, OpWallP99Us: 450}, {Name: "table1", WallMs: 2}},
		Micro:       []micro{{Name: "append", NsPerOp: 11}},
		TotalSimMs:  90,
		TotalWallMs: 10,
		Cases:       []volCase{{Name: "mem-seq-read", NsPerOp: 13}},
	}
	m := metrics(r)
	want := map[string]float64{
		"prepass wall_ms":           3,
		"experiment fig5 wall_ms":   7,
		"experiment fig5 sim_ms":    40,
		"experiment fig5 p99_us":    450,
		"experiment table1 wall_ms": 2,
		"micro append ns/op":        11,
		"total sim_ms":              90,
		"total wall_ms":             10,
		"case mem-seq-read ns/op":   13,
	}
	if len(m) != len(want) {
		t.Fatalf("got %d metrics %v, want %d", len(m), m, len(want))
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("metric %q = %v, want %v", k, m[k], v)
		}
	}
}
