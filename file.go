package lobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lobstore/internal/buddy"
	"lobstore/internal/catalog"
	"lobstore/internal/disk"
	"lobstore/internal/filevol"
	"lobstore/internal/store"
)

// Superblock format: the file-backed database's self-description, written
// once at creation so a reopening process can reconstruct the store
// parameters without out-of-band configuration.
//
//	magic(4) version(2) pad(2)
//	pageSize(4) seekNs(8) transferNs(8)
//	bufferPages(4) maxRun(4)
//	leafAreaPages(8) metaAreaPages(8) maxSegmentPages(4) pad(4)
const (
	superName    = "super.lob"
	superMagic   = 0x4C4F4256 // "LOBV"
	superVersion = 1
	superLen     = 56
)

func encodeSuper(cfg Config) []byte {
	buf := make([]byte, superLen)
	binary.LittleEndian.PutUint32(buf[0:], superMagic)
	binary.LittleEndian.PutUint16(buf[4:], superVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(cfg.PageSize))
	binary.LittleEndian.PutUint64(buf[12:], uint64(cfg.SeekTime.Nanoseconds()))
	binary.LittleEndian.PutUint64(buf[20:], uint64(cfg.TransferPerKB.Nanoseconds()))
	binary.LittleEndian.PutUint32(buf[28:], uint32(cfg.BufferPages))
	binary.LittleEndian.PutUint32(buf[32:], uint32(cfg.MaxBufferedRun))
	binary.LittleEndian.PutUint64(buf[36:], uint64(cfg.LeafAreaPages))
	binary.LittleEndian.PutUint64(buf[44:], uint64(cfg.MetaAreaPages))
	binary.LittleEndian.PutUint32(buf[52:], uint32(cfg.MaxSegmentPages))
	return buf
}

func decodeSuper(buf []byte) (Config, error) {
	var cfg Config
	if len(buf) < superLen || binary.LittleEndian.Uint32(buf[0:]) != superMagic {
		return cfg, fmt.Errorf("lobstore: not a database superblock")
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != superVersion {
		return cfg, fmt.Errorf("lobstore: superblock version %d unsupported", v)
	}
	cfg.PageSize = int(binary.LittleEndian.Uint32(buf[8:]))
	cfg.SeekTime = time.Duration(binary.LittleEndian.Uint64(buf[12:]))
	cfg.TransferPerKB = time.Duration(binary.LittleEndian.Uint64(buf[20:]))
	cfg.BufferPages = int(binary.LittleEndian.Uint32(buf[28:]))
	cfg.MaxBufferedRun = int(binary.LittleEndian.Uint32(buf[32:]))
	cfg.LeafAreaPages = int(binary.LittleEndian.Uint64(buf[36:]))
	cfg.MetaAreaPages = int(binary.LittleEndian.Uint64(buf[44:]))
	cfg.MaxSegmentPages = int(binary.LittleEndian.Uint32(buf[52:]))
	cfg.Materialize = true
	cfg.Backend = "file"
	return cfg, nil
}

// writeSuper durably creates the superblock: written to a temp file,
// fsynced, renamed into place, directory fsynced. Its presence marks a
// fully initialized database, so a crash during creation leaves a
// directory that Open refuses rather than a half-built store it would
// silently trust.
func writeSuper(dir string, cfg Config) error {
	f, err := os.CreateTemp(dir, superName+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(e error) error {
		return errors.Join(e, f.Close(), os.Remove(tmp))
	}
	if _, err := f.Write(encodeSuper(cfg)); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return errors.Join(err, os.Remove(tmp))
	}
	if err := os.Rename(tmp, filepath.Join(dir, superName)); err != nil {
		return errors.Join(err, os.Remove(tmp))
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return errors.Join(err, d.Close())
	}
	return d.Close()
}

func readSuper(dir string) (Config, error) {
	buf, err := os.ReadFile(filepath.Join(dir, superName))
	if err != nil {
		return Config{}, err
	}
	return decodeSuper(buf)
}

// openFile creates or reopens a durable file-backed database under
// cfg.Dir. A directory with a superblock is an existing database and is
// reopened (its recorded geometry wins over the caller's cfg; Dir,
// SyncPolicy, CrashInjection, Coalesce, GroupCommit, AsyncWriteback and
// Concurrent still come from the caller); otherwise a fresh database is
// created.
func openFile(cfg Config) (*DB, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("lobstore: file backend needs Config.Dir")
	}
	if !cfg.Materialize {
		return nil, fmt.Errorf("lobstore: file backend always materializes")
	}
	policy, err := filevol.ParsePolicy(cfg.SyncPolicy)
	if err != nil {
		return nil, err
	}
	super, err := readSuper(cfg.Dir)
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return nil, err
	}
	if !fresh {
		super.Dir, super.SyncPolicy, super.CrashInjection = cfg.Dir, cfg.SyncPolicy, cfg.CrashInjection
		super.Coalesce = cfg.Coalesce
		super.GroupCommit, super.AsyncWriteback = cfg.GroupCommit, cfg.AsyncWriteback
		super.Concurrent = cfg.Concurrent
		cfg = super
	}

	opts := []filevol.Option{filevol.WithPolicy(policy)}
	if cfg.CrashInjection {
		opts = append(opts, filevol.WithCrashLog())
	}
	if cfg.GroupCommit.MaxBatch > 0 {
		opts = append(opts, filevol.WithGroupCommit(filevol.GroupCommit{
			MaxBatch: cfg.GroupCommit.MaxBatch,
			MaxDelay: cfg.GroupCommit.MaxDelay,
		}))
	}
	if cfg.AsyncWriteback {
		opts = append(opts, filevol.WithAsyncWriteback())
	}
	if cfg.Concurrent && cfg.GroupCommit.MaxBatch <= 0 && !cfg.AsyncWriteback {
		// Concurrent committers need the commit pipeline's internal mutex
		// even when batching is off: MaxBatch 1 engages the pipeline
		// without changing flush behavior.
		opts = append(opts, filevol.WithGroupCommit(filevol.GroupCommit{MaxBatch: 1}))
	}
	vol, err := filevol.Open(cfg.Dir, cfg.PageSize, opts...)
	if err != nil {
		return nil, err
	}
	params := storeParams(cfg)
	params.Volume = vol
	st, err := store.Open(params)
	if err != nil {
		return nil, errors.Join(err, vol.Close())
	}

	var cat *catalog.Catalog
	if fresh {
		cat, err = catalog.New(st)
		if err == nil && cat.Root() != catalogAddr() {
			err = fmt.Errorf("lobstore: catalog landed at %v, expected %v", cat.Root(), catalogAddr())
		}
		if err == nil {
			// Everything the fresh database is made of — catalog page, space
			// directories — must be durable before the superblock declares
			// the directory a valid store.
			err = commitDurableState(st)
		}
		if err == nil {
			err = writeSuper(cfg.Dir, cfg)
		}
	} else {
		cat, err = catalog.Open(st, catalogAddr())
		if err == nil {
			// Reopen-time recovery: the on-disk space directories may be
			// stale (the previous process may have died mid-operation), so
			// allocation state is rebuilt from reachability and written
			// back, exactly like recovering from a mid-run crash.
			err = recoverAllocators(st, cat)
		}
		if err == nil {
			err = commitDurableState(st)
		}
	}
	if err != nil {
		return nil, errors.Join(err, st.Disk.Close())
	}
	db := &DB{st: st, cfg: cfg, cat: cat, vol: vol}
	if cfg.Concurrent {
		db.enableEngine()
	}
	return db, nil
}

// commitDurableState flushes everything held in memory (pool, space
// directories) and barriers, so the on-disk files are self-contained.
func commitDurableState(st *store.Store) error {
	if err := st.Flush(); err != nil {
		return err
	}
	return st.SyncBarrier()
}

// Close flushes all in-memory state — dirty buffer pool pages and space
// directories — forces it to stable storage, and releases the underlying
// volume. On a file-backed database a clean Close makes reopening skip no
// work (recovery still runs, and finds nothing to repair); on the memory
// backend it is cheap and optional. The database is unusable afterwards.
func (db *DB) Close() error {
	if db.eng != nil {
		// Quiesce the engine first: it refuses while snapshots are open,
		// and uninstalls its store hooks so the final flush below runs
		// single-threaded.
		if err := db.eng.Close(); err != nil {
			return err
		}
		db.eng = nil
	}
	return db.st.Close()
}

// Checkpoint flushes all in-memory state to the volume and barriers,
// without closing. After a checkpoint the on-disk files are a complete
// snapshot; a following power cut loses nothing committed so far.
func (db *DB) Checkpoint() error {
	if db.eng != nil {
		return db.eng.Run(func() error { return commitDurableState(db.st) })
	}
	return commitDurableState(db.st)
}

// InjectPowerCut arms a simulated power cut at the n-th sync barrier from
// now (n ≥ 1) on a file-backed database opened with CrashInjection: that
// barrier drops every write since the previous barrier — as a kernel that
// never flushed its page cache would — and the volume goes dead, failing
// all further I/O with filevol.ErrPowerCut. Reopen the directory with Open
// to run recovery. n ≤ 0 disarms.
func (db *DB) InjectPowerCut(n int64) error {
	if db.vol == nil {
		return fmt.Errorf("lobstore: power-cut injection needs the file backend")
	}
	return db.vol.FailAtBarrier(n)
}

// SyncBarriers reports how many durability barriers the file-backed volume
// has executed. The crash matrix uses the delta across an operation to
// enumerate its power-cut points.
func (db *DB) SyncBarriers() (int64, error) {
	if db.vol == nil {
		return 0, fmt.Errorf("lobstore: no file-backed volume")
	}
	return db.vol.Barriers(), nil
}

// FsckReport is the result of a consistency check of a file-backed
// database directory.
type FsckReport struct {
	// Objects is the number of cataloged entries scanned.
	Objects int
	// ReachablePages counts pages owned by the catalog or some object.
	ReachablePages int64
	// AllocatedPages counts pages the on-disk space directories record as
	// handed out.
	AllocatedPages int64
	// Leaked lists allocated-but-unreachable ranges: space the directories
	// believe is in use that no object owns. A crashed-then-recovered
	// store has none (recovery rewrites the directories from
	// reachability); a store killed mid-operation and never reopened may
	// legitimately show the interrupted operation's orphans.
	Leaked []PageRange
	// DoublyOwned lists pages claimed by two different owners — real
	// corruption under segment-granularity shadowing, where every page has
	// exactly one owner.
	DoublyOwned []OwnershipConflict
}

// PageRange is a run of pages within one database area.
type PageRange struct {
	Area  uint8
	Page  uint32
	Pages int
}

func (r PageRange) String() string {
	return fmt.Sprintf("%d:%d+%d", r.Area, r.Page, r.Pages)
}

// OwnershipConflict is one page claimed by two owners.
type OwnershipConflict struct {
	Area   uint8
	Page   uint32
	Owners [2]string
}

func (c OwnershipConflict) String() string {
	return fmt.Sprintf("%d:%d owned by %q and %q", c.Area, c.Page, c.Owners[0], c.Owners[1])
}

// Clean reports whether the check found no inconsistencies.
func (r FsckReport) Clean() bool { return len(r.Leaked) == 0 && len(r.DoublyOwned) == 0 }

// Fsck checks a file-backed database directory read-only: it loads the
// on-disk space directories as written, walks every object reachable from
// the catalog, and cross-checks the two views. Nothing is modified — the
// area files are opened read-only — so it is safe on a directory whose
// owning process crashed.
func Fsck(dir string) (_ *FsckReport, err error) {
	cfg, err := readSuper(dir)
	if err != nil {
		return nil, err
	}
	vol, err := filevol.Open(dir, cfg.PageSize, filevol.ReadOnly())
	if err != nil {
		return nil, err
	}
	params := storeParams(cfg)
	params.Volume = vol
	st, err := store.Open(params)
	if err != nil {
		return nil, errors.Join(err, vol.Close())
	}
	defer func() {
		// Read-only: nothing to flush, just release the files.
		if cerr := st.Disk.Close(); err == nil {
			err = cerr
		}
	}()
	// The allocators' view: the directories exactly as recorded on disk.
	if err := st.LoadAllocators(); err != nil {
		return nil, err
	}
	cat, err := catalog.Open(st, catalogAddr())
	if err != nil {
		return nil, fmt.Errorf("lobstore: fsck: %w", err)
	}

	rep := &FsckReport{}
	owners := make(map[disk.Addr]string)
	err = scanReachable(st, cat, func(owner string, a disk.Addr, pages int) error {
		for i := 0; i < pages; i++ {
			p := a.Add(i)
			if prev, ok := owners[p]; ok {
				if prev != owner {
					rep.DoublyOwned = append(rep.DoublyOwned, OwnershipConflict{
						Area:   uint8(p.Area),
						Page:   uint32(p.Page),
						Owners: [2]string{prev, owner},
					})
				}
				continue
			}
			owners[p] = owner
			rep.ReachablePages++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lobstore: fsck: %w", err)
	}
	entries, err := cat.List()
	if err != nil {
		return nil, err
	}
	rep.Objects = len(entries)

	allocated := append(st.Meta.AllocatedRanges(), st.Leaf.AllocatedRanges()...)
	collectLeaks(rep, allocated, owners)
	sortFindings(rep)
	return rep, nil
}

// collectLeaks walks the allocated ranges and records every maximal
// sub-run not covered by the reachable owner map.
func collectLeaks(rep *FsckReport, allocated []buddy.Range, owners map[disk.Addr]string) {
	for _, r := range allocated {
		rep.AllocatedPages += int64(r.Pages)
		leakStart := -1
		for i := 0; i <= r.Pages; i++ {
			leaked := false
			if i < r.Pages {
				_, reachable := owners[r.Addr.Add(i)]
				leaked = !reachable
			}
			if leaked && leakStart < 0 {
				leakStart = i
			}
			if !leaked && leakStart >= 0 {
				rep.Leaked = append(rep.Leaked, PageRange{
					Area:  uint8(r.Addr.Area),
					Page:  uint32(r.Addr.Add(leakStart).Page),
					Pages: i - leakStart,
				})
				leakStart = -1
			}
		}
	}
}

// sortFindings orders the report deterministically by address.
func sortFindings(rep *FsckReport) {
	sort.Slice(rep.Leaked, func(i, j int) bool {
		a, b := rep.Leaked[i], rep.Leaked[j]
		if a.Area != b.Area {
			return a.Area < b.Area
		}
		return a.Page < b.Page
	})
	sort.Slice(rep.DoublyOwned, func(i, j int) bool {
		a, b := rep.DoublyOwned[i], rep.DoublyOwned[j]
		if a.Area != b.Area {
			return a.Area < b.Area
		}
		return a.Page < b.Page
	})
}
