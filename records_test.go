package lobstore_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"lobstore"
)

func TestRecordFileBasics(t *testing.T) {
	db, err := lobstore.Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := db.CreateRecordFile("table")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := rf.Insert([]lobstore.Field{
		lobstore.ShortField([]byte("row-1")),
		lobstore.ShortField([]byte{9, 9, 9}),
	})
	if err != nil {
		t.Fatal(err)
	}
	fields, err := rf.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(fields[0].Inline) != "row-1" {
		t.Fatalf("fields %+v", fields)
	}
	if err := rf.Delete(rid); err != nil {
		t.Fatal(err)
	}
	// Name clashes with any catalog object, not just record files.
	if _, err := db.Create("table", lobstore.ObjectSpec{Engine: "eos", Threshold: 1}); err == nil {
		t.Error("record file name reused for an object")
	}
	if _, err := db.OpenRecordFile("missing"); err == nil {
		t.Error("opened missing record file")
	}
	// Opening a large object as a record file is rejected.
	if _, err := db.Create("blob", lobstore.ObjectSpec{Engine: "eos", Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OpenRecordFile("blob"); err == nil {
		t.Error("opened a large object as a record file")
	}
}

func TestRecordFileLongFieldsSurviveImage(t *testing.T) {
	db, err := lobstore.Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := db.CreateRecordFile("assets")
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte{0x42}, 123_456)
	obj, ref, err := rf.NewLongField(lobstore.ObjectSpec{Engine: "esm", LeafPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Append(blob); err != nil {
		t.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	rid, err := rf.Insert([]lobstore.Field{
		lobstore.ShortField([]byte("asset-7")),
		{Long: &ref},
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "rec.img")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := lobstore.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rf2, err := db2.OpenRecordFile("assets")
	if err != nil {
		t.Fatal(err)
	}
	fields, err := rf2.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := rf2.OpenLongField(*fields[1].Long)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, lf.Size())
	if err := lf.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("long field corrupted across image round trip")
	}
	if err := rf2.DestroyLongField(*fields[1].Long); err != nil {
		t.Fatal(err)
	}
}
