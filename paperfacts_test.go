package lobstore_test

import (
	"testing"

	"lobstore"
)

// TestPaperTreeShapes pins §4.2's structural facts for a 10 MB object:
//
//   - ESM, 1-page leaves: "of level 2 — the root, one level of … internal
//     nodes, and then 2560 leaves" (Layout.IndexLevels 1 = one interior
//     level below the root).
//   - ESM, 4-page leaves: level 2 with 640 leaves.
//   - ESM, 16- and 64-page leaves: level 1 (root only).
//   - "For Starburst and EOS the tree level is always 1."
func TestPaperTreeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 10 MB objects")
	}
	const objectBytes = 10 << 20
	build := func(spec lobstore.ObjectSpec) lobstore.Layout {
		t.Helper()
		db, err := lobstore.Open(lobstore.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		obj, err := db.Create("x", spec)
		if err != nil {
			t.Fatal(err)
		}
		chunk := make([]byte, 256<<10)
		for obj.Size() < objectBytes {
			if err := obj.Append(chunk); err != nil {
				t.Fatal(err)
			}
		}
		if err := obj.Close(); err != nil {
			t.Fatal(err)
		}
		l, err := lobstore.Inspect(obj)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	cases := []struct {
		name       string
		spec       lobstore.ObjectSpec
		wantLevels int
		wantSegs   int // exact for ESM (fixed leaves), -1 = don't check
	}{
		{"esm-1", lobstore.ObjectSpec{Engine: "esm", LeafPages: 1}, 1, 2560},
		{"esm-4", lobstore.ObjectSpec{Engine: "esm", LeafPages: 4}, 1, 640},
		{"esm-16", lobstore.ObjectSpec{Engine: "esm", LeafPages: 16}, 0, 160},
		{"esm-64", lobstore.ObjectSpec{Engine: "esm", LeafPages: 64}, 0, 40},
		{"eos", lobstore.ObjectSpec{Engine: "eos", Threshold: 16}, 0, -1},
		{"starburst", lobstore.ObjectSpec{Engine: "starburst"}, 0, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := build(tc.spec)
			if l.IndexLevels != tc.wantLevels {
				t.Errorf("index levels = %d, want %d (paper tree level %d)",
					l.IndexLevels, tc.wantLevels, tc.wantLevels+1)
			}
			if tc.wantSegs >= 0 && len(l.Segments) != tc.wantSegs {
				t.Errorf("segments = %d, want %d", len(l.Segments), tc.wantSegs)
			}
		})
	}
}

// TestPaperEOSMaxObjectClaim checks §4.2's arithmetic: "In EOS, to come up
// with a tree of level greater than 1, the size of the object being created
// must be larger than 16 Gigabytes" — 507 root pairs × 32 MB maximal
// segments ≈ 16 GB indexed by the root alone.
func TestPaperEOSMaxObjectClaim(t *testing.T) {
	const rootPairs = 507
	const maxSegBytes = 8192 * 4096
	// 507 × 32 MB ≈ 17.0×10⁹ bytes — "larger than 16 Gigabytes" in the
	// paper's decimal units.
	if capacity := int64(rootPairs) * int64(maxSegBytes); capacity < 16e9 {
		t.Fatalf("root-only EOS capacity %d below the paper's 16 GB", capacity)
	}
}
